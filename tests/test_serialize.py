"""Round-trip tests for sketch serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cmpbe import CMPBE
from repro.core.errors import InvalidParameterError
from repro.core.pbe1 import PBE1
from repro.core.pbe2 import PBE2
from repro.core.serialize import (
    dump_cmpbe,
    dump_pbe1,
    dump_pbe2,
    load_cmpbe,
    load_pbe1,
    load_pbe2,
)


@pytest.fixture(scope="module")
def timestamps() -> list[float]:
    rng = np.random.default_rng(21)
    return np.sort(rng.uniform(0, 3_000, size=600)).round(0).tolist()


class TestPbe1RoundTrip:
    def test_values_preserved(self, timestamps):
        sketch = PBE1(eta=30, buffer_size=150)
        sketch.extend(timestamps)
        sketch.flush()  # the dump folds a copy; fold for the comparison
        loaded = load_pbe1(dump_pbe1(sketch))
        for q in np.linspace(-10, 3_100, 60):
            assert loaded.value(q) == sketch.value(q)

    def test_metadata_preserved(self, timestamps):
        sketch = PBE1(eta=30, buffer_size=150)
        sketch.extend(timestamps)
        sketch.flush()
        loaded = load_pbe1(dump_pbe1(sketch))
        assert loaded.eta == 30
        assert loaded.buffer_size == 150
        assert loaded.count == sketch.count
        assert loaded.size_in_bytes() == sketch.size_in_bytes()

    def test_loaded_sketch_accepts_more_data(self, timestamps):
        sketch = PBE1(eta=30, buffer_size=150)
        sketch.extend(timestamps)
        loaded = load_pbe1(dump_pbe1(sketch))
        loaded.update(timestamps[-1] + 100.0)
        assert loaded.value(timestamps[-1] + 100.0) == sketch.count + 1

    def test_bad_payloads(self):
        with pytest.raises(InvalidParameterError):
            load_pbe1(b"short")
        with pytest.raises(InvalidParameterError):
            load_pbe1(b"XXXX" + b"\x00" * 64)


class TestPbe2RoundTrip:
    def test_values_preserved(self, timestamps):
        sketch = PBE2(gamma=8.0)
        sketch.extend(timestamps)
        sketch.finalize()
        loaded = load_pbe2(dump_pbe2(sketch))
        for q in np.linspace(-10, 3_100, 60):
            assert loaded.value(q) == pytest.approx(sketch.value(q))

    def test_metadata_preserved(self, timestamps):
        sketch = PBE2(gamma=8.0, unit=2.0)
        sketch.extend(timestamps)
        sketch.finalize()
        loaded = load_pbe2(dump_pbe2(sketch))
        assert loaded.gamma == 8.0
        assert loaded.unit == 2.0
        assert loaded.count == sketch.count
        assert loaded.n_segments == sketch.n_segments

    def test_bad_payloads(self):
        with pytest.raises(InvalidParameterError):
            load_pbe2(b"nope")
        with pytest.raises(InvalidParameterError):
            load_pbe2(b"XXXX" + b"\x00" * 64)

    def test_empty_sketch_round_trip(self):
        sketch = PBE2(gamma=3.0)
        loaded = load_pbe2(dump_pbe2(sketch))
        assert loaded.value(10.0) == 0.0


class TestCmpbeRoundTrip:
    @pytest.mark.parametrize("variant", ["pbe1", "pbe2"])
    def test_estimates_preserved(self, mixed_stream, variant):
        if variant == "pbe1":
            sketch = CMPBE.with_pbe1(
                eta=40, width=4, depth=3, buffer_size=200, seed=5
            )
        else:
            sketch = CMPBE.with_pbe2(gamma=10.0, width=4, depth=3, seed=5)
        sketch.extend(mixed_stream)
        sketch.finalize()
        loaded = load_cmpbe(dump_cmpbe(sketch))
        for event_id in (0, 5, 11):
            for t in (200.0, 520.0, 900.0):
                assert loaded.cumulative_frequency(event_id, t) == (
                    pytest.approx(sketch.cumulative_frequency(event_id, t))
                )
                assert loaded.burstiness(event_id, t, 50.0) == (
                    pytest.approx(sketch.burstiness(event_id, t, 50.0))
                )

    def test_metadata_preserved(self, mixed_stream):
        sketch = CMPBE.with_pbe1(
            eta=40, width=4, depth=3, buffer_size=200, combiner="min",
            seed=9,
        )
        sketch.extend(mixed_stream)
        loaded = load_cmpbe(dump_cmpbe(sketch))
        assert loaded.width == 4
        assert loaded.depth == 3
        assert loaded.combiner == "min"
        assert loaded.seed == 9
        assert loaded.count == sketch.count

    def test_bad_payload(self):
        with pytest.raises(InvalidParameterError):
            load_cmpbe(b"tiny")


class TestDumpsAreNonMutating:
    """Serialization must never perturb the sketch it reads.

    Durable readers snapshot the live memtable via the dump path; if
    dumping flushed buffers or committed polygons in place, a concurrent
    read would silently change the curve the writer goes on to build
    (and the content of any segment later sealed from it).
    """

    def test_pbe1_buffer_survives_a_dump(self, timestamps):
        sketch = PBE1(eta=30, buffer_size=150)
        sketch.extend(timestamps[:100])
        before = (list(sketch._kept_xs), list(sketch._buffer_xs))
        dump_pbe1(sketch)
        assert (list(sketch._kept_xs), list(sketch._buffer_xs)) == before

    def test_pbe2_live_state_survives_a_dump(self, timestamps):
        sketch = PBE2(gamma=8.0)
        sketch.extend(timestamps[:100])
        before = (
            len(sketch.segments),
            sketch._pending_t,
            None if sketch._poly_x is None else list(sketch._poly_x),
        )
        dump_pbe2(sketch)
        after = (
            len(sketch.segments),
            sketch._pending_t,
            None if sketch._poly_x is None else list(sketch._poly_x),
        )
        assert after == before

    def test_mid_stream_snapshots_leave_the_final_curve_unchanged(
        self, timestamps
    ):
        undisturbed = PBE1(eta=30, buffer_size=150)
        undisturbed.extend(timestamps)
        snapshotted = PBE1(eta=30, buffer_size=150)
        for start in range(0, len(timestamps), 100):
            snapshotted.extend(timestamps[start:start + 100])
            dump_pbe1(snapshotted)  # a reader peeking mid-stream
        assert dump_pbe1(snapshotted) == dump_pbe1(undisturbed)

    def test_cmpbe_snapshots_leave_the_final_grid_unchanged(
        self, mixed_stream
    ):
        records = list(mixed_stream)

        def build(snapshot_every=None):
            sketch = CMPBE.with_pbe1(
                eta=40, width=4, depth=3, buffer_size=200, seed=5
            )
            step = 100
            for start in range(0, len(records), step):
                sketch.extend(records[start:start + step])
                if snapshot_every is not None:
                    dump_cmpbe(sketch)
            return sketch

        assert dump_cmpbe(build(snapshot_every=1)) == dump_cmpbe(build())


class TestIndexRoundTrip:
    @pytest.fixture(scope="class", params=["pbe1", "pbe2"])
    def index(self, request, mixed_stream):
        from repro.core.dyadic import BurstyEventIndex

        if request.param == "pbe1":
            index = BurstyEventIndex.with_pbe1(
                16, eta=40, width=8, depth=3, buffer_size=200, seed=4
            )
        else:
            index = BurstyEventIndex.with_pbe2(
                16, gamma=8.0, width=8, depth=3, seed=4
            )
        index.extend(mixed_stream)
        index.finalize()
        return index

    def test_queries_preserved(self, index):
        from repro.core.serialize import dump_index, load_index

        loaded = load_index(dump_index(index))
        assert loaded.universe_size == 16
        assert loaded.n_levels == index.n_levels
        for event_id in (0, 5, 11):
            for t in (300.0, 520.0, 900.0):
                assert loaded.point_query(event_id, t, 50.0) == (
                    pytest.approx(index.point_query(event_id, t, 50.0))
                )

    def test_bursty_events_preserved(self, index):
        from repro.core.serialize import dump_index, load_index

        loaded = load_index(dump_index(index))
        original = {
            h.event_id for h in index.bursty_events(520.0, 200.0, 50.0)
        }
        restored = {
            h.event_id for h in loaded.bursty_events(520.0, 200.0, 50.0)
        }
        assert original == restored
        assert 5 in restored

    def test_bad_payload(self):
        from repro.core.errors import InvalidParameterError
        from repro.core.serialize import load_index

        with pytest.raises(InvalidParameterError):
            load_index(b"junk")


class TestDirectMapRoundTrip:
    def test_values_preserved(self, mixed_stream):
        from repro.core.cmpbe import DirectPBEMap
        from repro.core.serialize import dump_direct_map, load_direct_map

        direct = DirectPBEMap(lambda: PBE1(eta=30, buffer_size=200))
        direct.extend(mixed_stream)
        direct.finalize()
        loaded = load_direct_map(dump_direct_map(direct))
        assert loaded.count == direct.count
        for event_id in (0, 5, 15):
            for t in (250.0, 520.0, 999.0):
                assert loaded.cumulative_frequency(event_id, t) == (
                    direct.cumulative_frequency(event_id, t)
                )

    def test_rejects_wrong_type(self):
        from repro.core.errors import InvalidParameterError
        from repro.core.serialize import dump_direct_map

        with pytest.raises(InvalidParameterError):
            dump_direct_map(PBE1(eta=4))
