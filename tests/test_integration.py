"""End-to-end integration: messages -> h -> stream -> sketches -> queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CMPBE,
    PBE1,
    PBE2,
    ExactBurstStore,
    HistoricalBurstAnalyzer,
)
from repro.streams.io import read_binary, write_binary
from repro.text.mapper import HashtagEventMapper, map_messages
from repro.text.messages import SyntheticTweetSource
from repro.workloads.olympics import make_olympicrio
from repro.workloads.profiles import DAY


class TestMessagePipeline:
    def test_tweets_to_burst_detection(self):
        """Full paper pipeline: text messages through h to burst queries."""
        topics = ["weather", "earthquake"]
        source = SyntheticTweetSource(
            topics=topics, seed=0, multi_topic_probability=0.0
        )
        rng = np.random.default_rng(0)
        messages = []
        # Weather: steady mentions.  Earthquake: silent then a surge.
        for t in range(2_000):
            if rng.uniform() < 0.3:
                messages.append(source.message(0, float(t)))
            if t >= 1_500 and rng.uniform() < 3 * (
                np.exp(-(t - 1_500) / 200)
            ):
                messages.append(source.message(1, float(t)))
        mapper = HashtagEventMapper()
        stream = map_messages(messages, mapper)

        weather_id = mapper.id_of("weather")
        quake_id = mapper.id_of("earthquake")
        assert weather_id is not None and quake_id is not None

        analyzer = HistoricalBurstAnalyzer(
            "cm-pbe-1", universe_size=4, eta=80, buffer_size=300,
            width=4, depth=3,
        )
        analyzer.ingest(stream)
        analyzer.finalize()

        tau = 200.0
        # The earthquake bursts at its onset; weather never does.
        quake_b = analyzer.point_query(quake_id, 1_700.0, tau)
        weather_b = analyzer.point_query(weather_id, 1_700.0, tau)
        assert quake_b > 10 * max(weather_b, 1.0)
        hits = analyzer.bursty_events(1_700.0, quake_b * 0.5, tau)
        assert quake_id in {hit.event_id for hit in hits}


class TestSketchVsExactOnOlympics:
    @pytest.fixture(scope="class")
    def olympics(self):
        return make_olympicrio(n_events=48, total_mentions=25_000)

    def test_all_backends_agree_on_the_big_bursts(self, olympics):
        exact = ExactBurstStore.from_stream(olympics)
        tau = DAY
        # Find the strongest exact burst of event 0 (soccer).
        grid = np.arange(2 * DAY, 31 * DAY, DAY / 2)
        truths = [exact.burstiness(0, t, tau) for t in grid]
        t_star = float(grid[int(np.argmax(truths))])
        b_star = max(truths)
        assert b_star > 50

        for method, kwargs in (
            ("cm-pbe-1", {"eta": 100, "buffer_size": 500}),
            ("cm-pbe-2", {"gamma": 10.0}),
        ):
            analyzer = HistoricalBurstAnalyzer(
                method, universe_size=48, width=8, depth=3, **kwargs
            )
            analyzer.ingest(olympics)
            analyzer.finalize()
            estimate = analyzer.point_query(0, t_star, tau)
            assert estimate == pytest.approx(b_star, rel=0.5), method

    def test_round_trip_through_binary_file(self, olympics, tmp_path):
        path = tmp_path / "olympics.bin"
        write_binary(olympics, path)
        loaded = read_binary(path)
        sketch_a = PBE1(eta=50, buffer_size=300)
        sketch_b = PBE1(eta=50, buffer_size=300)
        sketch_a.extend(t for e, t in olympics if e == 0)
        sketch_b.extend(t for e, t in loaded if e == 0)
        sketch_a.flush()
        sketch_b.flush()
        for t in (5 * DAY, 15 * DAY, 29 * DAY):
            assert sketch_a.value(t) == sketch_b.value(t)


class TestSingleVsMixedConsistency:
    def test_cmpbe_cell_equals_pbe_on_single_event_stream(self):
        """With one event, every CM-PBE cell sees the full stream, so the
        estimate must equal a standalone PBE's."""
        rng = np.random.default_rng(8)
        ts = np.sort(rng.uniform(0, 5_000, size=1_000)).round(0).tolist()
        standalone = PBE2(gamma=7.0)
        standalone.extend(ts)
        standalone.finalize()
        sketch = CMPBE.with_pbe2(gamma=7.0, width=4, depth=3)
        for t in ts:
            sketch.update(0, t)
        sketch.finalize()
        for q in (500.0, 2_500.0, 4_900.0):
            assert sketch.cumulative_frequency(0, q) == pytest.approx(
                standalone.value(q)
            )

    def test_pbe1_inside_cmpbe_single_event(self):
        rng = np.random.default_rng(9)
        ts = np.sort(rng.uniform(0, 5_000, size=1_000)).round(0).tolist()
        standalone = PBE1(eta=40, buffer_size=200)
        standalone.extend(ts)
        standalone.flush()
        sketch = CMPBE.with_pbe1(eta=40, width=4, depth=3, buffer_size=200)
        for t in ts:
            sketch.update(0, t)
        sketch.finalize()
        for q in (500.0, 2_500.0, 4_900.0):
            assert sketch.cumulative_frequency(0, q) == pytest.approx(
                standalone.value(q)
            )
