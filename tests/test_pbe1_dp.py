"""Tests for the PBE-1 offline DP (optimal staircase approximation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.pbe1 import (
    approximate_staircase,
    approximate_staircase_bruteforce,
    smallest_eta_for_error,
)
from repro.streams.frequency import StaircaseCurve, staircase_area_between


def random_corners(seed: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    xs = np.cumsum(rng.integers(1, 9, size=n)).astype(float)
    ys = np.cumsum(rng.integers(1, 6, size=n)).astype(float)
    return xs, ys


corner_strategy = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=3, max_value=40),  # n
    st.integers(min_value=2, max_value=40),  # eta
)


class TestOptimality:
    @settings(max_examples=80, deadline=None)
    @given(corner_strategy)
    def test_hull_trick_matches_bruteforce(self, params):
        seed, n, eta = params
        xs, ys = random_corners(seed, n)
        fast = approximate_staircase(xs, ys, eta)
        slow = approximate_staircase_bruteforce(xs, ys, eta)
        assert fast.error == pytest.approx(slow.error, rel=1e-9, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(corner_strategy)
    def test_reported_error_matches_geometry(self, params):
        """The DP's error must equal the actual area between the curves."""
        seed, n, eta = params
        xs, ys = random_corners(seed, n)
        result = approximate_staircase(xs, ys, eta)
        exact = StaircaseCurve(xs, ys)
        approx = StaircaseCurve(xs[result.selected], ys[result.selected])
        area = staircase_area_between(exact, approx)
        assert result.error == pytest.approx(area, rel=1e-9, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(corner_strategy)
    def test_beats_every_random_subset(self, params):
        """No random admissible subset of the same size does better."""
        seed, n, eta = params
        xs, ys = random_corners(seed, n)
        result = approximate_staircase(xs, ys, eta)
        budget = min(eta, n)
        exact = StaircaseCurve(xs, ys)
        rng = np.random.default_rng(seed + 1)
        for _ in range(5):
            if budget <= 2:
                middle = np.empty(0, dtype=int)
            else:
                middle = rng.choice(
                    np.arange(1, n - 1), size=budget - 2, replace=False
                )
            chosen = np.unique(
                np.concatenate(([0], middle, [n - 1]))
            ).astype(int)
            candidate = StaircaseCurve(xs[chosen], ys[chosen])
            area = staircase_area_between(exact, candidate)
            assert result.error <= area + 1e-6


class TestStructure:
    def test_boundaries_always_selected(self):
        xs, ys = random_corners(1, 30)
        result = approximate_staircase(xs, ys, 5)
        assert result.selected[0] == 0
        assert result.selected[-1] == 29

    def test_selected_strictly_increasing(self):
        xs, ys = random_corners(2, 30)
        result = approximate_staircase(xs, ys, 7)
        assert np.all(np.diff(result.selected) > 0)
        assert len(result.selected) == 7

    def test_error_monotone_in_eta(self):
        xs, ys = random_corners(3, 50)
        errors = [
            approximate_staircase(xs, ys, eta).error
            for eta in range(2, 51, 4)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_full_budget_is_exact(self):
        xs, ys = random_corners(4, 20)
        result = approximate_staircase(xs, ys, 20)
        assert result.error == 0.0
        assert len(result.selected) == 20

    def test_oversized_budget_is_exact(self):
        xs, ys = random_corners(5, 10)
        result = approximate_staircase(xs, ys, 100)
        assert result.error == 0.0

    def test_tiny_curves(self):
        result = approximate_staircase(
            np.array([1.0]), np.array([2.0]), 2
        )
        assert result.error == 0.0
        result = approximate_staircase(
            np.array([1.0, 2.0]), np.array([1.0, 3.0]), 2
        )
        assert result.error == 0.0

    def test_eta_two_keeps_only_boundaries(self):
        xs, ys = random_corners(6, 15)
        result = approximate_staircase(xs, ys, 2)
        assert result.selected.tolist() == [0, 14]

    def test_known_small_example(self):
        # Corners: (0,1), (1,2), (3,3); dropping (1,2) costs area 2.
        xs = np.array([0.0, 1.0, 3.0])
        ys = np.array([1.0, 2.0, 3.0])
        result = approximate_staircase(xs, ys, 2)
        assert result.error == pytest.approx(2.0)

    def test_invalid_eta(self):
        xs, ys = random_corners(7, 10)
        with pytest.raises(InvalidParameterError):
            approximate_staircase(xs, ys, 1)

    def test_invalid_corners(self):
        with pytest.raises(InvalidParameterError):
            approximate_staircase(
                np.array([1.0, 1.0]), np.array([1.0, 2.0]), 2
            )
        with pytest.raises(InvalidParameterError):
            approximate_staircase(
                np.array([1.0, 2.0]), np.array([2.0, 2.0]), 2
            )

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            approximate_staircase(
                np.array([1.0, 2.0]), np.array([1.0]), 2
            )


class TestErrorCapMode:
    def test_zero_cap_keeps_everything_needed(self):
        xs, ys = random_corners(8, 20)
        result = smallest_eta_for_error(xs, ys, 0.0)
        assert result.error == 0.0

    def test_cap_respected_and_minimal(self):
        xs, ys = random_corners(9, 30)
        cap = approximate_staircase(xs, ys, 10).error
        result = smallest_eta_for_error(xs, ys, cap)
        assert result.error <= cap
        assert len(result.selected) <= 10
        if len(result.selected) > 2:
            smaller = approximate_staircase(
                xs, ys, len(result.selected) - 1
            )
            assert smaller.error > cap

    def test_huge_cap_uses_two_points(self):
        xs, ys = random_corners(10, 20)
        result = smallest_eta_for_error(xs, ys, 1e12)
        assert len(result.selected) == 2

    def test_negative_cap_rejected(self):
        xs, ys = random_corners(11, 5)
        with pytest.raises(InvalidParameterError):
            smallest_eta_for_error(xs, ys, -1.0)
