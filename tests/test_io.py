"""Round-trip tests for stream serialization."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.streams.events import EventStream
from repro.streams.io import (
    iter_csv,
    read_binary,
    read_csv,
    write_binary,
    write_csv,
)


@pytest.fixture
def sample_stream() -> EventStream:
    return EventStream(
        [(1, 0.0), (2, 0.5), (1, 0.5), (3, 2.25), (1, 1000000.125)]
    )


class TestCsv:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "stream.csv"
        write_csv(sample_stream, path)
        loaded = read_csv(path)
        assert list(loaded) == list(sample_stream)

    def test_iter_csv_lazy(self, tmp_path, sample_stream):
        path = tmp_path / "stream.csv"
        write_csv(sample_stream, path)
        iterator = iter_csv(path)
        assert next(iterator) == (1, 0.0)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(EventStream(), path)
        assert len(read_csv(path)) == 0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(InvalidParameterError):
            read_csv(path)

    def test_float_precision_preserved(self, tmp_path):
        stream = EventStream([(1, 0.1), (1, 0.30000000000000004)])
        path = tmp_path / "precise.csv"
        write_csv(stream, path)
        assert list(read_csv(path)) == list(stream)


class TestBinary:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "stream.bin"
        write_binary(sample_stream, path)
        loaded = read_binary(path)
        assert list(loaded) == list(sample_stream)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_binary(EventStream(), path)
        assert len(read_binary(path)) == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(InvalidParameterError):
            read_binary(path)

    def test_truncated_rejected(self, tmp_path, sample_stream):
        path = tmp_path / "trunc.bin"
        write_binary(sample_stream, path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(InvalidParameterError):
            read_binary(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "hdr.bin"
        path.write_bytes(b"REPRO")
        with pytest.raises(InvalidParameterError):
            read_binary(path)
