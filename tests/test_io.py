"""Round-trip tests for stream serialization."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidParameterError
from repro.streams.events import EventStream
from repro.streams.io import (
    iter_csv,
    read_binary,
    read_csv,
    write_binary,
    write_csv,
)


@pytest.fixture
def sample_stream() -> EventStream:
    return EventStream(
        [(1, 0.0), (2, 0.5), (1, 0.5), (3, 2.25), (1, 1000000.125)]
    )


class TestCsv:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "stream.csv"
        write_csv(sample_stream, path)
        loaded = read_csv(path)
        assert list(loaded) == list(sample_stream)

    def test_iter_csv_lazy(self, tmp_path, sample_stream):
        path = tmp_path / "stream.csv"
        write_csv(sample_stream, path)
        iterator = iter_csv(path)
        assert next(iterator) == (1, 0.0)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(EventStream(), path)
        assert len(read_csv(path)) == 0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(InvalidParameterError):
            read_csv(path)

    def test_float_precision_preserved(self, tmp_path):
        stream = EventStream([(1, 0.1), (1, 0.30000000000000004)])
        path = tmp_path / "precise.csv"
        write_csv(stream, path)
        assert list(read_csv(path)) == list(stream)


class TestMalformedCsvRows:
    """Regression: malformed rows used to surface as bare IndexError /
    ValueError with no hint of where in the file they were."""

    def _write(self, tmp_path, body: str):
        path = tmp_path / "rows.csv"
        path.write_text("event_id,timestamp\n" + body)
        return path

    def test_missing_column_names_line(self, tmp_path):
        path = self._write(tmp_path, "1,0.5\n7\n2,1.5\n")
        with pytest.raises(InvalidParameterError, match="line 3"):
            list(iter_csv(path))

    def test_non_numeric_field_names_line_and_row(self, tmp_path):
        path = self._write(tmp_path, "1,0.5\n2,abc\n")
        with pytest.raises(
            InvalidParameterError, match=r"line 3.*'abc'"
        ):
            list(iter_csv(path))

    def test_non_integer_id_rejected(self, tmp_path):
        path = self._write(tmp_path, "x,0.5\n")
        with pytest.raises(InvalidParameterError, match="line 2"):
            list(iter_csv(path))

    def test_good_rows_before_the_bad_one_still_yield(self, tmp_path):
        path = self._write(tmp_path, "1,0.5\n2,1.0\nbad\n")
        iterator = iter_csv(path)
        assert next(iterator) == (1, 0.5)
        assert next(iterator) == (2, 1.0)
        with pytest.raises(InvalidParameterError):
            next(iterator)


class TestBinary:
    def test_round_trip(self, tmp_path, sample_stream):
        path = tmp_path / "stream.bin"
        write_binary(sample_stream, path)
        loaded = read_binary(path)
        assert list(loaded) == list(sample_stream)

    def test_large_id_round_trips(self, tmp_path):
        """Regression: ids near the uint32 ceiling must survive the
        binary round-trip bit-exactly (they used to be silently cast)."""
        stream = EventStream([(2**32 - 1, 0.0), (2**31, 1.0)])
        path = tmp_path / "large.bin"
        write_binary(stream, path)
        assert list(read_binary(path)) == list(stream)

    def test_out_of_range_id_rejected_not_truncated(self, tmp_path):
        """Regression: an id >= 2**32 used to wrap modulo 2**32 and land
        on another event's id; now the writer refuses, naming it."""
        stream = EventStream([(1, 0.0), (2**32 + 7, 1.0)])
        path = tmp_path / "wide.bin"
        with pytest.raises(
            InvalidParameterError, match=str(2**32 + 7)
        ):
            write_binary(stream, path)
        assert not path.exists()

    def test_negative_id_rejected(self, tmp_path):
        stream = EventStream([(-3, 0.0)])
        with pytest.raises(InvalidParameterError, match="-3"):
            write_binary(stream, tmp_path / "neg.bin")

    def test_id_beyond_int64_rejected(self, tmp_path):
        stream = EventStream([(2**70, 0.0)])
        with pytest.raises(InvalidParameterError):
            write_binary(stream, tmp_path / "huge.bin")

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_binary(EventStream(), path)
        assert len(read_binary(path)) == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(InvalidParameterError):
            read_binary(path)

    def test_truncated_rejected(self, tmp_path, sample_stream):
        path = tmp_path / "trunc.bin"
        write_binary(sample_stream, path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(InvalidParameterError):
            read_binary(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "hdr.bin"
        path.write_bytes(b"REPRO")
        with pytest.raises(InvalidParameterError):
            read_binary(path)
