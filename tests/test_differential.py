"""Differential harness: the sketch stack vs the exact baseline.

Every workload is ingested twice — once into :class:`ExactBurstStore`
(ground truth) and once into a CM-PBE built through the batched ingest
path — and point-query burstiness is compared under the paper's
Theorem 1 error model::

    Pr[ |F~_e(t) - F_e(t)| <= eps * N + Delta ] >= 1 - delta

with ``eps = e / width``, ``delta = exp(-depth)``, and ``Delta`` the
cell-approximation error (``gamma`` a priori for PBE-2 cells; measured
exactly against each cell's collided sub-stream for PBE-1 cells).  A
burstiness query combines three cumulative-frequency reads, so its
error budget is ``4 * (eps * N + Delta)`` (Lemma 4 scaling).

Two kinds of assertion:

* **deterministic** — a PBE never overestimates its own collided
  stream, so the sketch can never *under*-report ``F_e`` by more than
  the worst cell error.  These hold for every query, no slack.
* **probabilistic** — collision overshoot is only bounded with
  probability ``1 - delta`` per query, so those assertions bound the
  *violation rate* over a seeded query panel (allowance ``3 * delta``
  for the three reads, plus finite-sample slack).
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict

import numpy as np
import pytest

from repro.baselines.exact import ExactBurstStore
from repro.core.cmpbe import CMPBE
from repro.workloads.generator import build_event_stream
from repro.workloads.rates import ConstantRate, GaussianBurst, SumRate

SEEDS = [11, 23, 47]
N_EVENTS = 48
HORIZON = 2_000.0
WIDTH = 16
DEPTH = 5
EPSILON = math.e / WIDTH
DELTA = math.exp(-DEPTH)


def make_workload(seed: int) -> tuple[np.ndarray, np.ndarray]:
    """A seeded inhomogeneous-Poisson mixed stream (~4k mentions).

    Event 0 carries a Gaussian attention burst around ``0.42 * HORIZON``
    on top of the flat background every event has, so the panel always
    probes at least one strongly bursty event.
    """
    rng = np.random.default_rng(seed)
    rates = {eid: ConstantRate(0.04) for eid in range(N_EVENTS)}
    rates[0] = SumRate(
        [
            ConstantRate(0.04),
            GaussianBurst(
                peak_time=0.42 * HORIZON, height=4.0, width=40.0
            ),
        ]
    )
    stream = build_event_stream(rates, t_end=HORIZON, rng=rng)
    return stream.as_columns()


def build_pair(ids, ts, sketch) -> tuple[ExactBurstStore, CMPBE]:
    """Ingest the workload into the oracle and (batched) into the sketch."""
    oracle = ExactBurstStore()
    for event_id, timestamp in zip(ids.tolist(), ts.tolist()):
        oracle.update(event_id, timestamp)
    sketch.extend_batch(ids, ts)
    return oracle, sketch


def query_panel(rng_seed: int = 5) -> tuple[list[int], np.ndarray]:
    """Events and times to probe: the planted burst plus random picks."""
    rng = np.random.default_rng(rng_seed)
    events = [0, *rng.integers(1, N_EVENTS, size=5).tolist()]
    times = np.linspace(0.0, 1.1 * HORIZON, 12)
    return events, times


def collided_substreams(
    ids: np.ndarray, ts: np.ndarray, sketch: CMPBE
) -> dict[tuple[int, int], list[float]]:
    """Exact per-cell collided timestamp lists, via the sketch's hashes."""
    unique_ids, inverse = np.unique(ids, return_inverse=True)
    columns = sketch._hashes.hash_many(unique_ids)[inverse]
    cells: dict[tuple[int, int], list[float]] = defaultdict(list)
    for i, t in enumerate(ts.tolist()):
        for row in range(sketch.depth):
            cells[(row, int(columns[i, row]))].append(t)
    return cells


def cell_errors(
    sketch: CMPBE,
    cells: dict[tuple[int, int], list[float]],
    event_id: int,
    t: float,
) -> list[float]:
    """Per-row ``F_collided(t) - cell.value(t)`` for one event's cells.

    Each entry must be non-negative (a PBE never overestimates its own
    stream); the max is the event's empirical ``Delta`` at ``t``.
    """
    errors = []
    for row, column in enumerate(sketch._hashes.hash_all(event_id)):
        exact = bisect.bisect_right(cells.get((row, column), []), t)
        estimate = sketch._cells[row][column].value(t)
        errors.append(exact - estimate)
    return errors


class TestCmPbe1Differential:
    """CM-PBE-1 vs the oracle, with measured cell-compression error."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("eta", [8, 24])
    def test_frequency_error_decomposition(self, seed, eta):
        ids, ts = make_workload(seed)
        oracle, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe1(
                eta=eta,
                width=WIDTH,
                depth=DEPTH,
                buffer_size=256,
                seed=seed,
            ),
        )
        cells = collided_substreams(ids, ts, sketch)
        events, times = query_panel()
        overshoots = 0
        total = 0
        for event_id in events:
            for t in times.tolist():
                errors = cell_errors(sketch, cells, event_id, t)
                # Deterministic: no cell overestimates its collided stream.
                assert min(errors) >= -1e-6
                delta_emp = max(errors)
                exact = oracle.cumulative_frequency(event_id, t)
                estimate = sketch.cumulative_frequency(event_id, t)
                # Deterministic: underestimation only from cell error.
                assert estimate >= exact - delta_emp - 1e-6
                # Probabilistic: overshoot is collision mass.
                total += 1
                if estimate - exact > EPSILON * sketch.count:
                    overshoots += 1
        assert overshoots <= math.ceil(DELTA * total) + 2

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("tau", [50.0, 150.0])
    @pytest.mark.parametrize("eta", [8, 24])
    def test_burstiness_within_theorem_bound(self, seed, tau, eta):
        ids, ts = make_workload(seed)
        oracle, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe1(
                eta=eta,
                width=WIDTH,
                depth=DEPTH,
                buffer_size=256,
                seed=seed,
            ),
        )
        cells = collided_substreams(ids, ts, sketch)
        events, times = query_panel()
        violations = 0
        total = 0
        for event_id in events:
            for t in times.tolist():
                delta_emp = max(
                    max(cell_errors(sketch, cells, event_id, t_i))
                    for t_i in (t, t - tau, t - 2 * tau)
                )
                bound = 4 * (EPSILON * sketch.count + delta_emp)
                exact = oracle.burstiness(event_id, t, tau)
                estimate = sketch.burstiness(event_id, t, tau)
                total += 1
                if abs(estimate - exact) > bound + 1e-6:
                    violations += 1
        # Three F-reads per burstiness query -> 3 * delta allowance.
        assert violations <= math.ceil(3 * DELTA * total) + 2


class TestCmPbe2Differential:
    """CM-PBE-2 vs the oracle; Delta = gamma holds a priori per cell."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("tau", [50.0, 150.0])
    @pytest.mark.parametrize("gamma", [4.0, 16.0])
    def test_burstiness_within_theorem_bound(self, seed, tau, gamma):
        ids, ts = make_workload(seed)
        oracle, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe2(
                gamma=gamma, width=WIDTH, depth=DEPTH, seed=seed
            ),
        )
        events, times = query_panel()
        bound = 4 * (EPSILON * sketch.count + gamma)
        violations = 0
        total = 0
        for event_id in events:
            for t in times.tolist():
                exact = oracle.burstiness(event_id, t, tau)
                estimate = sketch.burstiness(event_id, t, tau)
                total += 1
                if abs(estimate - exact) > bound + 1e-6:
                    violations += 1
        assert violations <= math.ceil(3 * DELTA * total) + 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cells_never_overestimate_collided_streams(self, seed):
        """Deterministic PBE-2 sandwich on every cell's own stream."""
        ids, ts = make_workload(seed)
        gamma = 8.0
        _, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe2(
                gamma=gamma, width=WIDTH, depth=DEPTH, seed=seed
            ),
        )
        cells = collided_substreams(ids, ts, sketch)
        for (row, column), collided in cells.items():
            cell = sketch._cells[row][column]
            for t in np.linspace(0.0, HORIZON, 9).tolist():
                exact = bisect.bisect_right(collided, t)
                assert cell.value(t) <= exact + 1e-6
