"""Differential harness: the sketch stack vs the exact baseline.

Every workload is ingested twice — once into :class:`ExactBurstStore`
(ground truth) and once into a CM-PBE built through the batched ingest
path — and point-query burstiness is compared under the paper's
Theorem 1 error model::

    Pr[ |F~_e(t) - F_e(t)| <= eps * N + Delta ] >= 1 - delta

with ``eps = e / width``, ``delta = exp(-depth)``, and ``Delta`` the
cell-approximation error (``gamma`` a priori for PBE-2 cells; measured
exactly against each cell's collided sub-stream for PBE-1 cells).  A
burstiness query combines three cumulative-frequency reads, so its
error budget is ``4 * (eps * N + Delta)`` (Lemma 4 scaling).

Two kinds of assertion:

* **deterministic** — a PBE never overestimates its own collided
  stream, so the sketch can never *under*-report ``F_e`` by more than
  the worst cell error.  These hold for every query, no slack.
* **probabilistic** — collision overshoot is only bounded with
  probability ``1 - delta`` per query, so those assertions bound the
  *violation rate* over a seeded query panel (allowance ``3 * delta``
  for the three reads, plus finite-sample slack).
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict

import numpy as np
import pytest

from repro.baselines.exact import ExactBurstStore
from repro.core.cmpbe import CMPBE, DirectPBEMap
from repro.core.dyadic import BurstyEventIndex
from repro.core.pbe1 import PBE1
from repro.core.pbe2 import PBE2
from repro.core.store import create_store
from repro.workloads.generator import build_event_stream
from repro.workloads.rates import ConstantRate, GaussianBurst, SumRate

from tests.backends import BACKEND_IDS, BACKEND_MATRIX, EXACT_LABELS

SEEDS = [11, 23, 47]
N_EVENTS = 48
HORIZON = 2_000.0
WIDTH = 16
DEPTH = 5
EPSILON = math.e / WIDTH
DELTA = math.exp(-DEPTH)


def make_workload(seed: int) -> tuple[np.ndarray, np.ndarray]:
    """A seeded inhomogeneous-Poisson mixed stream (~4k mentions).

    Event 0 carries a Gaussian attention burst around ``0.42 * HORIZON``
    on top of the flat background every event has, so the panel always
    probes at least one strongly bursty event.
    """
    rng = np.random.default_rng(seed)
    rates = {eid: ConstantRate(0.04) for eid in range(N_EVENTS)}
    rates[0] = SumRate(
        [
            ConstantRate(0.04),
            GaussianBurst(
                peak_time=0.42 * HORIZON, height=4.0, width=40.0
            ),
        ]
    )
    stream = build_event_stream(rates, t_end=HORIZON, rng=rng)
    return stream.as_columns()


def build_pair(ids, ts, sketch) -> tuple[ExactBurstStore, CMPBE]:
    """Ingest the workload into the oracle and (batched) into the sketch."""
    oracle = ExactBurstStore()
    for event_id, timestamp in zip(ids.tolist(), ts.tolist()):
        oracle.update(event_id, timestamp)
    sketch.extend_batch(ids, ts)
    return oracle, sketch


def query_panel(rng_seed: int = 5) -> tuple[list[int], np.ndarray]:
    """Events and times to probe: the planted burst plus random picks."""
    rng = np.random.default_rng(rng_seed)
    events = [0, *rng.integers(1, N_EVENTS, size=5).tolist()]
    times = np.linspace(0.0, 1.1 * HORIZON, 12)
    return events, times


def collided_substreams(
    ids: np.ndarray, ts: np.ndarray, sketch: CMPBE
) -> dict[tuple[int, int], list[float]]:
    """Exact per-cell collided timestamp lists, via the sketch's hashes."""
    unique_ids, inverse = np.unique(ids, return_inverse=True)
    columns = sketch._hashes.hash_many(unique_ids)[inverse]
    cells: dict[tuple[int, int], list[float]] = defaultdict(list)
    for i, t in enumerate(ts.tolist()):
        for row in range(sketch.depth):
            cells[(row, int(columns[i, row]))].append(t)
    return cells


def cell_errors(
    sketch: CMPBE,
    cells: dict[tuple[int, int], list[float]],
    event_id: int,
    t: float,
) -> list[float]:
    """Per-row ``F_collided(t) - cell.value(t)`` for one event's cells.

    Each entry must be non-negative (a PBE never overestimates its own
    stream); the max is the event's empirical ``Delta`` at ``t``.
    """
    errors = []
    for row, column in enumerate(sketch._hashes.hash_all(event_id)):
        exact = bisect.bisect_right(cells.get((row, column), []), t)
        estimate = sketch._cells[row][column].value(t)
        errors.append(exact - estimate)
    return errors


class TestCmPbe1Differential:
    """CM-PBE-1 vs the oracle, with measured cell-compression error."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("eta", [8, 24])
    def test_frequency_error_decomposition(self, seed, eta):
        ids, ts = make_workload(seed)
        oracle, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe1(
                eta=eta,
                width=WIDTH,
                depth=DEPTH,
                buffer_size=256,
                seed=seed,
            ),
        )
        cells = collided_substreams(ids, ts, sketch)
        events, times = query_panel()
        overshoots = 0
        total = 0
        for event_id in events:
            for t in times.tolist():
                errors = cell_errors(sketch, cells, event_id, t)
                # Deterministic: no cell overestimates its collided stream.
                assert min(errors) >= -1e-6
                delta_emp = max(errors)
                exact = oracle.cumulative_frequency(event_id, t)
                estimate = sketch.cumulative_frequency(event_id, t)
                # Deterministic: underestimation only from cell error.
                assert estimate >= exact - delta_emp - 1e-6
                # Probabilistic: overshoot is collision mass.
                total += 1
                if estimate - exact > EPSILON * sketch.count:
                    overshoots += 1
        assert overshoots <= math.ceil(DELTA * total) + 2

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("tau", [50.0, 150.0])
    @pytest.mark.parametrize("eta", [8, 24])
    def test_burstiness_within_theorem_bound(self, seed, tau, eta):
        ids, ts = make_workload(seed)
        oracle, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe1(
                eta=eta,
                width=WIDTH,
                depth=DEPTH,
                buffer_size=256,
                seed=seed,
            ),
        )
        cells = collided_substreams(ids, ts, sketch)
        events, times = query_panel()
        violations = 0
        total = 0
        for event_id in events:
            for t in times.tolist():
                delta_emp = max(
                    max(cell_errors(sketch, cells, event_id, t_i))
                    for t_i in (t, t - tau, t - 2 * tau)
                )
                bound = 4 * (EPSILON * sketch.count + delta_emp)
                exact = oracle.burstiness(event_id, t, tau)
                estimate = sketch.burstiness(event_id, t, tau)
                total += 1
                if abs(estimate - exact) > bound + 1e-6:
                    violations += 1
        # Three F-reads per burstiness query -> 3 * delta allowance.
        assert violations <= math.ceil(3 * DELTA * total) + 2


class TestCmPbe2Differential:
    """CM-PBE-2 vs the oracle; Delta = gamma holds a priori per cell."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("tau", [50.0, 150.0])
    @pytest.mark.parametrize("gamma", [4.0, 16.0])
    def test_burstiness_within_theorem_bound(self, seed, tau, gamma):
        ids, ts = make_workload(seed)
        oracle, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe2(
                gamma=gamma, width=WIDTH, depth=DEPTH, seed=seed
            ),
        )
        events, times = query_panel()
        bound = 4 * (EPSILON * sketch.count + gamma)
        violations = 0
        total = 0
        for event_id in events:
            for t in times.tolist():
                exact = oracle.burstiness(event_id, t, tau)
                estimate = sketch.burstiness(event_id, t, tau)
                total += 1
                if abs(estimate - exact) > bound + 1e-6:
                    violations += 1
        assert violations <= math.ceil(3 * DELTA * total) + 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cells_never_overestimate_collided_streams(self, seed):
        """Deterministic PBE-2 sandwich on every cell's own stream."""
        ids, ts = make_workload(seed)
        gamma = 8.0
        _, sketch = build_pair(
            ids,
            ts,
            CMPBE.with_pbe2(
                gamma=gamma, width=WIDTH, depth=DEPTH, seed=seed
            ),
        )
        cells = collided_substreams(ids, ts, sketch)
        for (row, column), collided in cells.items():
            cell = sketch._cells[row][column]
            for t in np.linspace(0.0, HORIZON, 9).tolist():
                exact = bisect.bisect_right(collided, t)
                assert cell.value(t) <= exact + 1e-6

# ----------------------------------------------------------------------
# The pluggable store layer: every registered backend, one harness
# ----------------------------------------------------------------------
def _build_backend(label: str, ids: np.ndarray, ts: np.ndarray):
    """Ingest the workload into the matrix entry named ``label``."""
    _, backend, cfg = next(
        row for row in BACKEND_MATRIX if row[0] == label
    )
    store = create_store(backend, **cfg)
    store.extend_batch(ids, ts)
    store.finalize()
    return store


def _raw_reference(label: str, cfg: dict, ids: np.ndarray, ts: np.ndarray):
    """The raw structure a matrix entry wraps, built outside the store
    layer with identical knobs.  Returns ``(point_query_fn, obj)``."""
    if label == "cm-pbe-1":
        raw = CMPBE.with_pbe1(
            eta=cfg["eta"], width=cfg["width"], depth=cfg["depth"],
            buffer_size=cfg["buffer_size"], seed=cfg["seed"],
        )
    elif label == "cm-pbe-2":
        raw = CMPBE.with_pbe2(
            gamma=cfg["gamma"], width=cfg["width"], depth=cfg["depth"],
            unit=cfg["unit"], seed=cfg["seed"],
        )
    elif label == "direct-pbe1":
        raw = DirectPBEMap(
            cell_factory=lambda: PBE1(
                eta=cfg["eta"], buffer_size=cfg["buffer_size"]
            )
        )
    elif label == "direct-pbe2":
        raw = DirectPBEMap(
            cell_factory=lambda: PBE2(gamma=cfg["gamma"], unit=cfg["unit"])
        )
    elif label == "index-pbe1":
        index = BurstyEventIndex.with_pbe1(
            cfg["universe_size"], eta=cfg["eta"], width=cfg["width"],
            depth=cfg["depth"], buffer_size=cfg["buffer_size"],
            seed=cfg["seed"],
        )
        index.extend_batch(ids, ts)
        index.finalize()
        leaf = index.level_sketch(0)
        return leaf.burstiness, index
    elif label == "index-pbe2":
        index = BurstyEventIndex.with_pbe2(
            cfg["universe_size"], gamma=cfg["gamma"], width=cfg["width"],
            depth=cfg["depth"], unit=cfg["unit"], seed=cfg["seed"],
        )
        index.extend_batch(ids, ts)
        index.finalize()
        leaf = index.level_sketch(0)
        return leaf.burstiness, index
    else:
        raise AssertionError(f"no raw reference for {label}")
    raw.extend_batch(ids, ts)
    raw.finalize()
    return raw.burstiness, raw


class TestBackendMatrixDifferential:
    """Every registered backend through one harness: the exact family
    must match the oracle bit-for-bit; every sketch adapter must match
    the raw structure it wraps, built with identical knobs."""

    @pytest.fixture(scope="class")
    def workload(self):
        return make_workload(11)

    @pytest.fixture(scope="class")
    def oracle(self, workload):
        ids, ts = workload
        oracle = ExactBurstStore()
        for event_id, timestamp in zip(ids.tolist(), ts.tolist()):
            oracle.update(event_id, timestamp)
        return oracle

    @pytest.mark.parametrize(
        "label,backend,cfg", BACKEND_MATRIX, ids=BACKEND_IDS
    )
    def test_ingest_and_canonical_order(self, workload, label, backend, cfg):
        ids, ts = workload
        store = _build_backend(label, ids, ts)
        assert store.count == ids.size
        hits = store.bursty_event_query(0.42 * HORIZON, 1.0, 50.0)
        keys = [(-hit.burstiness, hit.event_id) for hit in hits]
        assert keys == sorted(keys), "hits must be in canonical order"

    @pytest.mark.parametrize("label", sorted(EXACT_LABELS))
    def test_exact_family_matches_oracle(self, workload, oracle, label):
        ids, ts = workload
        store = _build_backend(label, ids, ts)
        events, times = query_panel()
        tau = 50.0
        for event_id in events:
            for t in times.tolist():
                assert store.point_query(event_id, t, tau) == oracle.burstiness(
                    event_id, t, tau
                )
        for t in (0.42 * HORIZON, 0.8 * HORIZON):
            got = {
                (hit.event_id, hit.burstiness)
                for hit in store.bursty_event_query(t, 2.0, tau)
            }
            want = {
                (hit.event_id, hit.burstiness)
                for hit in oracle.bursty_events(t, 2.0, tau)
            }
            assert got == want
        assert store.bursty_time_query(0, 3.0, tau) == oracle.bursty_times(
            0, 3.0, tau, t_end=float(ts[-1]) + 2 * tau
        )

    @pytest.mark.parametrize(
        "label",
        [
            "cm-pbe-1",
            "cm-pbe-2",
            "direct-pbe1",
            "direct-pbe2",
            "index-pbe1",
            "index-pbe2",
        ],
    )
    def test_sketch_adapter_matches_raw_structure(self, workload, label):
        ids, ts = workload
        _, _, cfg = next(row for row in BACKEND_MATRIX if row[0] == label)
        store = _build_backend(label, ids, ts)
        raw_query, _ = _raw_reference(label, cfg, ids, ts)
        events, times = query_panel()
        for tau in (50.0, 150.0):
            for event_id in events:
                for t in times.tolist():
                    got = store.point_query(event_id, t, tau)
                    want = raw_query(event_id, t, tau)
                    assert got == pytest.approx(want, abs=1e-9)

    def test_sharded_sketch_equals_manual_partition(self, workload):
        """A sharded CM-PBE answers exactly like per-shard raw CM-PBEs
        built over the hash-partitioned substreams."""
        ids, ts = workload
        label = "sharded-x3-cm-pbe-1"
        _, _, cfg = next(row for row in BACKEND_MATRIX if row[0] == label)
        store = _build_backend(label, ids, ts)
        raws = []
        for shard in range(cfg["shards"]):
            raw = CMPBE.with_pbe1(
                eta=cfg["eta"], width=cfg["width"], depth=cfg["depth"],
                buffer_size=cfg["buffer_size"], seed=cfg["seed"],
            )
            mask = np.array(
                [store.shard_of(i) == shard for i in ids.tolist()]
            )
            raw.extend_batch(ids[mask], ts[mask])
            raw.finalize()
            raws.append(raw)
        events, times = query_panel()
        tau = 50.0
        for event_id in events:
            owner = raws[store.shard_of(event_id)]
            for t in times.tolist():
                assert store.point_query(event_id, t, tau) == pytest.approx(
                    owner.burstiness(event_id, t, tau), abs=1e-9
                )
