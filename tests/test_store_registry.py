"""Registry completeness: the CI gate that keeps the backend registry
and the parametrized test matrix in lockstep.

CI runs this module as its own named step; a backend registered in
``repro.core.store`` but absent from ``tests/backends.BACKEND_MATRIX``
fails the build here, before any other suite runs, with a message naming
the missing key.
"""

from __future__ import annotations

import pytest

from repro.core.serialize import load_store, save_store
from repro.core.store import backend_keys, create_store

from tests.backends import (
    BACKEND_MATRIX,
    EXACT_LABELS,
    covered_keys,
    sharded_shard_counts,
)


class TestRegistryCompleteness:
    def test_every_registered_backend_is_in_the_matrix(self):
        missing = set(backend_keys()) - covered_keys()
        assert not missing, (
            f"backend(s) {sorted(missing)} are registered in "
            "repro.core.store but missing from tests/backends.py: add a "
            "matrix entry so the differential and round-trip suites "
            "cover them"
        )

    def test_matrix_names_only_registered_backends(self):
        unknown = covered_keys() - set(backend_keys())
        assert not unknown, (
            f"matrix entries reference unregistered backend(s) "
            f"{sorted(unknown)}"
        )

    def test_sharded_runs_at_multiple_shard_counts(self):
        counts = sharded_shard_counts()
        assert len(counts) >= 2, (
            "the matrix must exercise ShardedBurstStore at two or more "
            f"shard counts, got {sorted(counts)}"
        )

    def test_matrix_labels_are_unique(self):
        labels = [label for label, _, _ in BACKEND_MATRIX]
        assert len(labels) == len(set(labels))

    def test_exact_labels_exist_in_matrix(self):
        labels = {label for label, _, _ in BACKEND_MATRIX}
        assert EXACT_LABELS <= labels

    @pytest.mark.parametrize(
        "label,backend,cfg",
        BACKEND_MATRIX,
        ids=[label for label, _, _ in BACKEND_MATRIX],
    )
    def test_every_matrix_entry_constructs_and_round_trips(
        self, label, backend, cfg
    ):
        """The whole lifecycle must work solely through the registry:
        create, ingest, query, serialize, reload."""
        store = create_store(backend, **cfg)
        for t in range(1, 30):
            store.update(t % 5, float(t))
        store.finalize()
        assert store.count == 29
        again = load_store(save_store(store))
        assert again.backend_key == backend
        assert again.count == 29
        assert again.point_query(1, 20.0, 5.0) == pytest.approx(
            store.point_query(1, 20.0, 5.0), abs=1e-9
        )
