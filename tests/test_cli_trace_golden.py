"""Golden CLI test for the tracing surface: ``ingest --trace`` +
``repro trace summary`` + ``repro trace export --perfetto``.

The scenario ingests a deterministic stream through the single-process
durable lifecycle with inline sealing, so the set of spans — names and
counts: ``wal.append``/``wal.fsync`` per append/sync point,
``seal.segment_write``/``manifest.commit`` per seal, one
``durable.apply_batch`` per CLI batch, one ``ingest`` root — is exact
run to run; only the measured durations vary and are normalized to
``<T>``.  The transcript is frozen under ``tests/golden/trace.txt``.

A second test re-reads the exported Perfetto file and checks
trace-event JSON conformance (the shape ``ui.perfetto.dev`` and
``chrome://tracing`` load).

To regenerate after an intentional behaviour change::

    PYTHONPATH=src python tests/test_cli_trace_golden.py --regenerate
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "trace.txt"

STEPS: list[list[str]] = [
    [
        "generate", "olympicrio", "--out", "<STREAM>",
        "--events", "12", "--mentions", "3000",
    ],
    [
        "ingest", "<STREAM>", "--durable", "<DUR>",
        "--backend", "exact", "--seal-elements", "256",
        "--batch-size", "512", "--trace", "<TRACE>",
    ],
    ["trace", "summary", "<TRACE>"],
    ["trace", "export", "<TRACE>", "--perfetto", "<PERFETTO>"],
]

#: Any ``%.3f``-formatted duration (the summary's p50/p99/total columns
#: are wall time), together with its right-alignment padding — the
#: field width varies with the measured magnitude; span names and
#: counts stay exact.
_DURATIONS = re.compile(r" *\d+\.\d{3}")


def _normalize(text: str) -> str:
    return _DURATIONS.sub(" <T>", text)


def run_scenario(tmp_dir: Path, capsys) -> str:
    substitutions = {
        "<STREAM>": str(tmp_dir / "stream.bin"),
        "<DUR>": str(tmp_dir / "durable"),
        "<TRACE>": str(tmp_dir / "durable" / "trace"),
        "<PERFETTO>": str(tmp_dir / "trace.perfetto.json"),
    }
    transcript: list[str] = []
    for step in STEPS:
        argv = [substitutions.get(arg, arg) for arg in step]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # Longest value first so <TRACE> (inside <DUR>) wins over it.
        for token, value in sorted(
            substitutions.items(), key=lambda kv: -len(kv[1])
        ):
            out = out.replace(value, token)
        transcript.append(_normalize(out))
    return "".join(transcript)


def test_trace_cli_matches_golden(tmp_path, capsys):
    assert run_scenario(tmp_path, capsys) == GOLDEN.read_text()


def test_summary_reports_the_storage_stages(tmp_path, capsys):
    """Acceptance check in test form: the summary table includes per-
    stage latency rows for the WAL append, segment write and manifest
    commit paths."""
    transcript = run_scenario(tmp_path, capsys)
    summary = transcript.split("span ", 1)[1]
    for stage in (
        "ingest",
        "durable.apply_batch",
        "wal.append",
        "wal.fsync",
        "seal.segment_write",
        "manifest.commit",
    ):
        assert re.search(rf"^{re.escape(stage)} +\d", summary, re.M), stage


def test_perfetto_export_is_loadable_trace_event_json(tmp_path, capsys):
    run_scenario(tmp_path, capsys)
    payload = json.loads((tmp_path / "trace.perfetto.json").read_text())
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    events = payload["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in ("X", "M")
        assert isinstance(event["name"], str)
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert event["cat"] == "repro"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["tid"], int)
        else:
            assert event["name"] == "process_name"
            assert isinstance(event["args"]["name"], str)
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert {"ingest", "wal.append", "seal.segment_write"} <= names


def _regenerate() -> None:
    import contextlib
    import io
    import tempfile
    import types

    class _Drain:
        def __init__(self, buffer: io.StringIO) -> None:
            self._buffer = buffer
            self._position = 0

        def readouterr(self):
            value = self._buffer.getvalue()
            out = value[self._position:]
            self._position = len(value)
            return types.SimpleNamespace(out=out)

    GOLDEN.parent.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            transcript = run_scenario(Path(tmp), _Drain(buffer))
        GOLDEN.write_text(transcript)
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
