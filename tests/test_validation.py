"""Tests for the sketch validation utility."""

from __future__ import annotations

import pytest

from repro.core.cmpbe import CMPBE, DirectPBEMap
from repro.core.errors import InvalidParameterError
from repro.core.pbe1 import PBE1
from repro.eval.validation import validate_sketch


class TestValidateSketch:
    @pytest.fixture(scope="class")
    def sketch(self, mixed_stream) -> CMPBE:
        sketch = CMPBE.with_pbe1(eta=80, width=8, depth=3, buffer_size=300)
        sketch.extend(mixed_stream)
        sketch.finalize()
        return sketch

    def test_report_fields(self, sketch, mixed_stream):
        report = validate_sketch(sketch, mixed_stream, tau=50.0)
        assert report.n_queries == 16 * 32
        assert report.mean_abs_error <= report.max_abs_error
        assert report.median_abs_error <= report.max_abs_error
        assert report.rmse >= report.mean_abs_error - 1e-9
        assert report.truth_scale > 300  # the planted burst

    def test_exact_sketch_validates_perfectly(self, mixed_stream):
        perfect = DirectPBEMap(lambda: PBE1(eta=10_000, buffer_size=10_000))
        perfect.extend(mixed_stream)
        report = validate_sketch(perfect, mixed_stream, tau=50.0)
        assert report.mean_abs_error == 0.0
        assert report.max_abs_error == 0.0
        assert report.relative_mean_error == 0.0

    def test_worst_queries_sorted(self, sketch, mixed_stream):
        report = validate_sketch(
            sketch, mixed_stream, tau=50.0, n_worst=5
        )
        errors = [bad.error for bad in report.worst]
        assert errors == sorted(errors, reverse=True)
        assert len(report.worst) == 5

    def test_event_subset(self, sketch, mixed_stream):
        report = validate_sketch(
            sketch, mixed_stream, tau=50.0, event_ids=[5], n_times=10
        )
        assert report.n_queries == 10

    def test_summary_text(self, sketch, mixed_stream):
        report = validate_sketch(sketch, mixed_stream, tau=50.0)
        text = report.summary()
        assert "mean abs err" in text
        assert "worst:" in text

    def test_validation_errors(self, sketch, mixed_stream):
        with pytest.raises(InvalidParameterError):
            validate_sketch(sketch, mixed_stream, tau=0.0)
        with pytest.raises(InvalidParameterError):
            validate_sketch(sketch, mixed_stream, tau=1.0, n_times=0)
        with pytest.raises(InvalidParameterError):
            validate_sketch(sketch, mixed_stream, tau=1.0, event_ids=[])

    def test_better_sketch_scores_better(self, mixed_stream):
        coarse = CMPBE.with_pbe2(gamma=80.0, width=4, depth=3)
        fine = CMPBE.with_pbe2(gamma=2.0, width=8, depth=3)
        coarse.extend(mixed_stream)
        fine.extend(mixed_stream)
        coarse.finalize()
        fine.finalize()
        coarse_report = validate_sketch(coarse, mixed_stream, tau=50.0)
        fine_report = validate_sketch(fine, mixed_stream, tau=50.0)
        assert fine_report.mean_abs_error <= coarse_report.mean_abs_error
