"""Write-ahead log framing, fsync policies and replay semantics."""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.wal import (
    FSYNC_POLICIES,
    WAL_HEADER_SIZE,
    WAL_MAGIC,
    WriteAheadLog,
    replay_wal,
)


def _batch(n, offset=0):
    ids = np.arange(n, dtype=np.int64) % 7
    ts = np.arange(offset, offset + n, dtype=np.float64)
    return ids, ts


class TestAppendReplay:
    def test_round_trips_batches_in_order(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for i in range(5):
                ids, ts = _batch(10, offset=10 * i)
                wal.append(ids, ts)
        replay = replay_wal(path)
        assert replay.frames == 5
        assert replay.records == 50
        assert not replay.torn
        assert replay.good_offset == os.path.getsize(path)
        for i, (ids, ts, counts) in enumerate(replay):
            want_ids, want_ts = _batch(10, offset=10 * i)
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(ts, want_ts)
            assert counts is None

    def test_counts_column_round_trips(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append([1, 2], [0.0, 1.0], np.asarray([3, 4]))
            wal.append_record(9, 2.0, count=5)
            wal.append_record(9, 3.0)
        replay = replay_wal(path)
        assert replay.frames == 3
        np.testing.assert_array_equal(replay.batches[0][2], [3, 4])
        np.testing.assert_array_equal(replay.batches[1][2], [5])
        assert replay.batches[2][2] is None

    def test_missing_file_replays_empty(self, tmp_path):
        replay = replay_wal(tmp_path / "nope.log")
        assert replay.frames == 0 and not replay.torn
        assert replay.good_offset == 0

    def test_empty_log_replays_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        WriteAheadLog(path).close()
        replay = replay_wal(path)
        assert replay.frames == 0 and not replay.torn
        assert replay.good_offset == WAL_HEADER_SIZE

    def test_wrong_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(InvalidParameterError, match="not a WAL"):
            replay_wal(path)


class TestTornTails:
    def _write_two_frames(self, path):
        with WriteAheadLog(path) as wal:
            wal.append(*_batch(4))
            wal.append(*_batch(4, offset=4))
        return os.path.getsize(path)

    @pytest.mark.parametrize("cut", [1, 4, 7, 8, 15])
    def test_truncation_drops_only_the_torn_frame(self, tmp_path, cut):
        path = tmp_path / "wal.log"
        size = self._write_two_frames(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - cut)
        replay = replay_wal(path)
        assert replay.torn
        assert replay.frames == 1
        np.testing.assert_array_equal(replay.batches[0][1], _batch(4)[1])

    def test_corrupt_crc_stops_replay_at_the_bad_frame(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write_two_frames(path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte in the second frame
        path.write_bytes(bytes(data))
        replay = replay_wal(path)
        assert replay.torn
        assert replay.frames == 1

    def test_absurd_length_field_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        WriteAheadLog(path).close()
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 2**31, 0) + b"xx")
        replay = replay_wal(path)
        assert replay.torn and replay.frames == 0

    def test_append_after_resume_at_skips_the_torn_bytes(self, tmp_path):
        path = tmp_path / "wal.log"
        size = self._write_two_frames(path)
        with open(path, "ab") as handle:
            handle.write(b"\x07garbage")  # torn tail
        replay = replay_wal(path)
        assert replay.torn and replay.frames == 2
        wal = WriteAheadLog(path, _resume_at=replay.good_offset)
        wal.append(*_batch(4, offset=8))
        wal.close()
        again = replay_wal(path)
        assert not again.torn
        assert again.frames == 3
        assert again.good_offset == size + (again.good_offset - size)


class TestPolicies:
    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_all_policies_produce_identical_bytes(self, tmp_path, policy):
        path = tmp_path / f"wal-{policy}.log"
        with WriteAheadLog(path, fsync=policy) as wal:
            wal.append(*_batch(16))
            wal.flush()
        assert path.read_bytes()[:4] == WAL_MAGIC
        replay = replay_wal(path)
        assert replay.frames == 1 and replay.records == 16

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="fsync policy"):
            WriteAheadLog(tmp_path / "w.log", fsync="sometimes")

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.close()
        wal.close()
        assert wal.closed

    def test_size_tracks_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        assert wal.size == WAL_HEADER_SIZE
        grown = wal.append(*_batch(3))
        assert grown == wal.size == os.path.getsize(wal.path)
        wal.close()


class TestFlushThresholds:
    """Under ``fsync="batch"`` the log syncs on its own once the
    unsynced tail crosses the byte/record thresholds, so a slow
    producer cannot hold acknowledged records unsynced indefinitely.

    A 4-record frame is 8 bytes of frame header plus a 70-byte payload
    (1 kind + 4 count + 4x8 ids + 4x8 timestamps + 1 counts flag) =
    78 bytes; the byte-threshold test leans on that arithmetic.
    """

    def test_byte_threshold_triggers_a_sync(self, tmp_path):
        with WriteAheadLog(
            tmp_path / "w.log", fsync="batch", flush_bytes=100
        ) as wal:
            wal.append(*_batch(4))  # 78 bytes: below the threshold
            assert wal.unsynced_bytes == 78
            wal.append(*_batch(4, offset=4))  # 156 >= 100: synced
            assert wal.unsynced_bytes == 0
            wal.append(*_batch(4, offset=8))  # window restarts
            assert wal.unsynced_bytes == 78

    def test_record_threshold_triggers_a_sync(self, tmp_path):
        with WriteAheadLog(
            tmp_path / "w.log", fsync="batch", flush_records=10
        ) as wal:
            wal.append(*_batch(4))
            wal.append(*_batch(4, offset=4))
            assert wal.unsynced_records == 8
            wal.append(*_batch(4, offset=8))  # 12 >= 10: synced
            assert wal.unsynced_records == 0
            assert wal.unsynced_bytes == 0

    def test_explicit_flush_resets_the_window(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.log", fsync="batch") as wal:
            wal.append(*_batch(4))
            assert wal.unsynced_bytes > 0
            wal.flush()
            assert wal.unsynced_bytes == 0
            assert wal.unsynced_records == 0

    def test_always_policy_never_accumulates(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.log", fsync="always") as wal:
            wal.append(*_batch(4))
            assert wal.unsynced_bytes == 0
            assert wal.unsynced_records == 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"flush_bytes": 0}, {"flush_bytes": -1}, {"flush_records": 0}],
        ids=["zero-bytes", "negative-bytes", "zero-records"],
    )
    def test_nonpositive_thresholds_rejected(self, tmp_path, kwargs):
        with pytest.raises(InvalidParameterError, match="positive"):
            WriteAheadLog(tmp_path / "w.log", fsync="batch", **kwargs)


def test_frame_layout_is_length_crc_payload(tmp_path):
    """The documented wire format, checked byte-for-byte."""
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append(np.asarray([5], dtype=np.int64), np.asarray([2.5]))
    data = path.read_bytes()
    offset = WAL_HEADER_SIZE
    length, crc = struct.unpack_from("<II", data, offset)
    payload = data[offset + 8 : offset + 8 + length]
    assert zlib.crc32(payload) == crc
    kind, n = struct.unpack_from("<BI", payload)
    assert kind == 1 and n == 1
    assert struct.unpack_from("<q", payload, 5)[0] == 5
    assert struct.unpack_from("<d", payload, 13)[0] == 2.5
    assert payload[21] == 0  # no counts column
