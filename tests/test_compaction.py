"""Segment compaction and shard rebalancing (repro.core.compaction).

Covers the tiering policy in isolation, end-to-end merge-down identity
(answers bit-identical before/after compaction, across every backend
with a lazy merge fast path), the background compactor thread, offline
``rebalance`` round-trips, and the named errors that point users at
``repro rebalance`` when shard counts disagree.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.compaction import (
    DEFAULT_COMPACT_FANIN,
    Compactor,
    plan_compaction,
    rebalance,
    size_tier,
)
from repro.core.durable import DurableBurstStore, create_durable, recover
from repro.core.errors import (
    InvalidParameterError,
    ShardCountMismatchError,
)
from repro.core.parallel_ingest import ParallelIngestCoordinator

from test_crash_recovery import (
    TAU,
    THETA,
    UNIVERSE,
    _oracle,
    _stream,
    assert_matrix_identical,
)


def _segment_count(store):
    children = getattr(store, "shards", None) or [store]
    return sum(len(child._segment_names) for child in children)


# ----------------------------------------------------------------------
# Tiering policy
# ----------------------------------------------------------------------
class TestTierPolicy:
    def test_size_tier_is_monotonic_and_factor_four(self):
        sizes = [1, 2, 5, 17, 100, 4096, 10**6, 10**9]
        tiers = [size_tier(s) for s in sizes]
        assert tiers == sorted(tiers)
        assert size_tier(1) == 0
        for s in (1, 7, 64, 1000, 12345):
            # One factor of four is exactly one tier.
            assert size_tier(4 * s) == size_tier(s) + 1

    def test_zero_and_negative_clamp(self):
        assert size_tier(0) == size_tier(1)
        assert size_tier(-5) == size_tier(1)

    def test_plan_requires_min_segments(self):
        assert plan_compaction([10, 10], min_segments=4) is None
        assert plan_compaction([], min_segments=2) is None
        assert plan_compaction([10, 10], min_segments=2) == (0, 2)

    def test_plan_caps_at_fanin(self):
        sizes = [8] * 10
        assert plan_compaction(sizes, fanin=4, min_segments=2) == (0, 4)

    def test_plan_prefers_smallest_tier(self):
        # Two big segments up front, then a run of small ones: the
        # small tier wins even though the big run comes first.
        sizes = [10**6, 10**6, 4, 4, 4]
        assert plan_compaction(sizes, fanin=8, min_segments=2) == (2, 5)

    def test_plan_only_merges_adjacent_runs(self):
        # Same-tier segments separated by a big one never form a run.
        sizes = [4, 10**6, 4, 10**6, 4]
        assert plan_compaction(sizes, fanin=8, min_segments=2) is None

    def test_plan_validates_parameters(self):
        with pytest.raises(InvalidParameterError):
            plan_compaction([1, 1], fanin=1, min_segments=2)
        with pytest.raises(InvalidParameterError):
            plan_compaction([1, 1], fanin=2, min_segments=1)


# ----------------------------------------------------------------------
# Merge-down identity
# ----------------------------------------------------------------------
class TestCompactionIdentity:
    def test_fifty_segments_compact_with_identical_answers(self, tmp_path):
        ids, ts = _stream(500)
        store = create_durable(
            tmp_path / "store", seal_elements=10, fsync="never"
        )
        with store:
            store.extend_batch(ids, ts)
            store.seal()
            before = _segment_count(store)
            assert before >= 50
            fanin = 5
            runs = store.compact(fanin=fanin, min_segments=2)
            assert runs >= 1
            after = _segment_count(store)
            assert after <= math.ceil(before / fanin)
            assert_matrix_identical(store, _oracle(ids, ts))
        # The compacted layout recovers to the same answers.
        recovered = recover(tmp_path / "store")
        with recovered:
            assert _segment_count(recovered) == after
            assert_matrix_identical(recovered, _oracle(ids, ts))

    @pytest.mark.parametrize("backend", ["cm-pbe-1", "cm-pbe-2"])
    def test_sketch_backends_compact_bit_identically(
        self, tmp_path, backend
    ):
        # Approximate backends have no exact oracle; the invariant is
        # that compaction (which routes through the lazy zero-copy
        # merge fast paths) changes no answer at all.
        ids, ts = _stream(400)
        store = create_durable(
            tmp_path / "store",
            backend=backend,
            seal_elements=16,
            fsync="never",
            universe_size=UNIVERSE,
        )
        horizon = float(ts[-1]) + 2 * TAU
        panel_ids = np.repeat(np.arange(UNIVERSE), 5)
        panel_ts = np.tile(np.linspace(0.0, horizon, 5), UNIVERSE)
        with store:
            store.extend_batch(ids, ts)
            store.seal()
            assert _segment_count(store) >= 10
            point_before = store.point_query_batch(panel_ids, panel_ts, TAU)
            times_before = [
                store.bursty_time_query(e, THETA, TAU)
                for e in range(UNIVERSE)
            ]
            events_before = [
                store.bursty_event_query(float(t), THETA, TAU)
                for t in np.linspace(0.0, horizon, 5)
            ]
            store.compact(fanin=4, min_segments=2)
            assert _segment_count(store) < 10
            np.testing.assert_array_equal(
                store.point_query_batch(panel_ids, panel_ts, TAU),
                point_before,
            )
            assert [
                store.bursty_time_query(e, THETA, TAU)
                for e in range(UNIVERSE)
            ] == times_before
            assert [
                store.bursty_event_query(float(t), THETA, TAU)
                for t in np.linspace(0.0, horizon, 5)
            ] == events_before
        recovered = recover(tmp_path / "store")
        with recovered:
            np.testing.assert_array_equal(
                recovered.point_query_batch(panel_ids, panel_ts, TAU),
                point_before,
            )

    def test_compaction_survives_interleaved_ingest(self, tmp_path):
        ids, ts = _stream(600)
        store = create_durable(
            tmp_path / "store", seal_elements=20, fsync="never"
        )
        with store:
            for start in range(0, 600, 200):
                store.extend_batch(
                    ids[start : start + 200], ts[start : start + 200]
                )
                store.compact(fanin=4, min_segments=2)
            store.seal()
            store.compact(fanin=4, min_segments=2)
            assert_matrix_identical(store, _oracle(ids, ts))

    def test_compact_requires_directory(self):
        store = DurableBurstStore(None, seal_elements=10)
        with store:
            with pytest.raises(InvalidParameterError):
                store.compact()


# ----------------------------------------------------------------------
# Background compactor thread
# ----------------------------------------------------------------------
class TestBackgroundCompactor:
    def test_background_thread_compacts_while_ingesting(self, tmp_path):
        ids, ts = _stream(500)
        store = create_durable(
            tmp_path / "store",
            seal_elements=10,
            fsync="never",
            compact=True,
            compact_fanin=4,
            compact_min_segments=2,
        )
        with store:
            for start in range(0, 500, 50):
                store.extend_batch(
                    ids[start : start + 50], ts[start : start + 50]
                )
            store.seal()
            store.drain_compaction()
            assert _segment_count(store) < 50
            assert_matrix_identical(store, _oracle(ids, ts))
        recovered = recover(tmp_path / "store")
        with recovered:
            assert_matrix_identical(recovered, _oracle(ids, ts))

    def test_background_with_background_seal(self, tmp_path):
        ids, ts = _stream(400)
        store = create_durable(
            tmp_path / "store",
            seal_elements=10,
            fsync="never",
            background_seal=True,
            compact=True,
            compact_fanin=4,
            compact_min_segments=2,
        )
        with store:
            store.extend_batch(ids, ts)
            store.drain_seals()
            store.drain_compaction()
            assert_matrix_identical(store, _oracle(ids, ts))
        recovered = recover(tmp_path / "store")
        with recovered:
            assert_matrix_identical(recovered, _oracle(ids, ts))

    def test_compact_true_requires_directory(self):
        with pytest.raises(InvalidParameterError):
            DurableBurstStore(None, compact=True)

    def test_compactor_validates_parameters(self, tmp_path):
        store = create_durable(tmp_path / "store", fsync="never")
        with store:
            with pytest.raises(InvalidParameterError):
                Compactor(store, fanin=1)
            with pytest.raises(InvalidParameterError):
                Compactor(store, min_segments=0)
        assert DEFAULT_COMPACT_FANIN >= 2


# ----------------------------------------------------------------------
# Offline shard rebalancing
# ----------------------------------------------------------------------
class TestRebalance:
    def _build(self, directory, ids, ts, shards):
        store = create_durable(
            directory,
            shards=shards,
            seal_elements=32,
            fsync="never",
        )
        with store:
            store.extend_batch(ids, ts)
            store.seal()

    def test_round_trip_matches_fresh_build(self, tmp_path):
        ids, ts = _stream(500)
        target = tmp_path / "store"
        self._build(target, ids, ts, shards=4)

        result = rebalance(target, shards=2, fsync="never")
        assert result == {"shards": 2, "records": 500}
        two = recover(target)
        with two:
            assert len(two.shards) == 2
            assert_matrix_identical(two, _oracle(ids, ts))
            counts_two = [child.count for child in two.shards]

        # Same routing as a store built sharded-by-2 from scratch.
        fresh = tmp_path / "fresh2"
        self._build(fresh, ids, ts, shards=2)
        fresh_store = recover(fresh)
        with fresh_store:
            assert [c.count for c in fresh_store.shards] == counts_two

        # And back up to 4 shards: still every answer, still 500.
        result = rebalance(target, shards=4, fsync="never")
        assert result == {"shards": 4, "records": 500}
        four = recover(target)
        with four:
            assert len(four.shards) == 4
            assert_matrix_identical(four, _oracle(ids, ts))

    def test_rebalance_rejects_non_sharded_directories(self, tmp_path):
        store = create_durable(tmp_path / "flat", fsync="never")
        with store:
            store.extend_batch(*_stream(32))
        with pytest.raises(InvalidParameterError):
            rebalance(tmp_path / "flat", shards=2)

    def test_rebalance_validates_shard_count(self, tmp_path):
        ids, ts = _stream(64)
        self._build(tmp_path / "store", ids, ts, shards=2)
        with pytest.raises(InvalidParameterError):
            rebalance(tmp_path / "store", shards=0)


# ----------------------------------------------------------------------
# Named shard-count errors point at `repro rebalance`
# ----------------------------------------------------------------------
class TestShardCountMismatch:
    def test_create_durable_resume_names_rebalance(self, tmp_path):
        ids, ts = _stream(100)
        store = create_durable(
            tmp_path / "store", shards=4, seal_elements=32, fsync="never"
        )
        with store:
            store.extend_batch(ids, ts)
        with pytest.raises(ShardCountMismatchError, match="repro rebalance"):
            create_durable(
                tmp_path / "store", shards=2, resume=True, fsync="never"
            )

    def test_coordinator_resume_names_rebalance(self, tmp_path):
        ids, ts = _stream(100)
        store = create_durable(
            tmp_path / "store", shards=4, seal_elements=32, fsync="never"
        )
        with store:
            store.extend_batch(ids, ts)
        with pytest.raises(ShardCountMismatchError, match="repro rebalance"):
            ParallelIngestCoordinator(
                tmp_path / "store", writers=2, resume=True, fsync="never"
            )
