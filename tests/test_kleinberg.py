"""Tests for the Kleinberg burst-automaton baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kleinberg import KleinbergBurstDetector
from repro.core.errors import InvalidParameterError


def gappy_stream() -> list[float]:
    """Sparse arrivals, a dense burst, then sparse again."""
    times = [float(t) for t in range(0, 1_000, 100)]  # every 100
    times += [1_000 + t * 2.0 for t in range(200)]  # every 2
    times += [1_400 + t * 100.0 for t in range(10)]  # every 100
    return sorted(times)


class TestKleinberg:
    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            KleinbergBurstDetector(s=1.0)
        with pytest.raises(InvalidParameterError):
            KleinbergBurstDetector(gamma=0.0)
        with pytest.raises(InvalidParameterError):
            KleinbergBurstDetector(n_states=1)

    def test_empty_and_single(self):
        detector = KleinbergBurstDetector()
        assert detector.state_sequence([]) == []
        assert detector.state_sequence([1.0]) == []
        assert detector.burst_intervals([1.0]) == []

    def test_stable_stream_never_bursts(self):
        detector = KleinbergBurstDetector()
        times = [float(t) for t in range(0, 1_000, 10)]
        assert detector.burst_intervals(times) == []

    def test_detects_dense_phase(self):
        detector = KleinbergBurstDetector()
        intervals = detector.burst_intervals(gappy_stream())
        assert intervals, "the dense phase must be flagged"
        start, end = intervals[0].start, intervals[-1].end
        assert 900 <= start <= 1_100
        assert 1_300 <= end <= 1_500

    def test_state_sequence_length(self):
        detector = KleinbergBurstDetector()
        times = gappy_stream()
        states = detector.state_sequence(times)
        assert len(states) == len(times) - 1

    def test_higher_gamma_means_fewer_bursts(self):
        lenient = KleinbergBurstDetector(gamma=0.5)
        strict = KleinbergBurstDetector(gamma=50.0)
        times = gappy_stream()

        def burst_length(detector):
            return sum(
                iv.end - iv.start for iv in detector.burst_intervals(times)
            )

        assert burst_length(strict) <= burst_length(lenient)

    def test_multi_state_levels(self):
        detector = KleinbergBurstDetector(n_states=3)
        intervals = detector.burst_intervals(gappy_stream())
        assert intervals
        assert all(iv.level >= 1 for iv in intervals)

    def test_agrees_with_acceleration_definition_on_onset(self):
        """Kleinberg's burst onset ~ where acceleration-burstiness peaks."""
        from repro.streams.frequency import StaircaseCurve

        times = gappy_stream()
        detector = KleinbergBurstDetector()
        intervals = detector.burst_intervals(times)
        curve = StaircaseCurve.from_timestamps(times)
        tau = 200.0
        grid = np.arange(200.0, 1_800.0, 20.0)
        values = [curve.burstiness(t, tau) for t in grid]
        peak_t = float(grid[int(np.argmax(values))])
        assert intervals[0].start - 400 <= peak_t <= intervals[-1].end + 400
