"""Unit tests for the pluggable backend layer (repro.core.store):
registry semantics, the BurstStore protocol surface, sharded routing and
cross-part merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    InvalidParameterError,
    StreamOrderError,
    UnknownBackendError,
)
from repro.core.parallel import build_store_chunked, merge_stores
from repro.core.store import (
    BurstStore,
    ShardedBurstStore,
    backend_keys,
    create_store,
    register_backend,
)

from tests.backends import BACKEND_IDS, BACKEND_MATRIX, UNIVERSE


def drip_and_surge(n: int = 600) -> tuple[np.ndarray, np.ndarray]:
    """Events 0..7 drip uniformly; event 3 surges in [400, 440]."""
    rng = np.random.default_rng(7)
    ts = np.sort(rng.uniform(0.0, 1_000.0, n))
    ids = rng.integers(0, 8, n)
    surge = np.sort(rng.uniform(400.0, 440.0, 80))
    all_ts = np.concatenate([ts, surge])
    all_ids = np.concatenate([ids, np.full(80, 3)])
    order = np.argsort(all_ts, kind="stable")
    return all_ids[order], all_ts[order]


class TestRegistry:
    def test_known_keys(self):
        assert set(backend_keys()) == {
            "exact",
            "cm-pbe-1",
            "cm-pbe-2",
            "direct",
            "index",
            "sharded",
            "instrumented",
            "durable",
        }

    def test_unknown_backend_raises_with_listing(self):
        with pytest.raises(UnknownBackendError, match="cm-pbe-1"):
            create_store("no-such-backend")

    def test_every_created_store_satisfies_protocol(self):
        for label, backend, cfg in BACKEND_MATRIX:
            store = create_store(backend, **cfg)
            assert isinstance(store, BurstStore), label
            assert store.backend_key == backend, label

    def test_register_backend_latest_wins(self):
        sentinel = create_store("exact")

        register_backend(
            "test-dummy", lambda **cfg: sentinel, lambda payload: sentinel
        )
        try:
            assert "test-dummy" in backend_keys()
            assert create_store("test-dummy") is sentinel
            replacement = create_store("exact")
            register_backend(
                "test-dummy",
                lambda **cfg: replacement,
                lambda payload: replacement,
            )
            assert create_store("test-dummy") is replacement
        finally:
            from repro.core.store import _REGISTRY

            _REGISTRY.pop("test-dummy", None)


class TestProtocolSurface:
    @pytest.mark.parametrize(
        "label,backend,cfg", BACKEND_MATRIX, ids=BACKEND_IDS
    )
    def test_ingest_paths_agree(self, label, backend, cfg):
        """update, extend and extend_batch must be interchangeable."""
        ids, ts = drip_and_surge(200)
        one = create_store(backend, **cfg)
        two = create_store(backend, **cfg)
        three = create_store(backend, **cfg)
        for event_id, t in zip(ids.tolist(), ts.tolist()):
            one.update(event_id, t)
        two.extend(zip(ids.tolist(), ts.tolist()))
        three.extend_batch(ids, ts)
        for store in (one, two, three):
            store.finalize()
        for store in (two, three):
            assert store.count == one.count
            for event_id in (0, 3):
                for t in (300.0, 420.0, 900.0):
                    assert store.point_query(
                        event_id, t, 25.0
                    ) == pytest.approx(
                        one.point_query(event_id, t, 25.0), abs=1e-9
                    )

    @pytest.mark.parametrize(
        "label,backend,cfg", BACKEND_MATRIX, ids=BACKEND_IDS
    )
    def test_memory_elements_positive_after_ingest(self, label, backend, cfg):
        ids, ts = drip_and_surge(200)
        store = create_store(backend, **cfg)
        store.extend_batch(ids, ts)
        store.finalize()
        assert store.memory_elements() > 0
        assert store.size_in_bytes() > 0

    @pytest.mark.parametrize(
        "label,backend,cfg", BACKEND_MATRIX, ids=BACKEND_IDS
    )
    def test_out_of_order_rejected(self, label, backend, cfg):
        store = create_store(backend, **cfg)
        store.update(1, 10.0)
        with pytest.raises(StreamOrderError):
            store.update(1, 5.0)

    def test_surge_is_bursty_everywhere(self):
        """Every backend flags the planted surge as a bursty time."""
        ids, ts = drip_and_surge()
        for label, backend, cfg in BACKEND_MATRIX:
            store = create_store(backend, **cfg)
            store.extend_batch(ids, ts)
            store.finalize()
            intervals = store.bursty_time_query(3, theta=20.0, tau=50.0)
            assert intervals, label
            assert any(
                start <= 440.0 and end >= 400.0 for start, end in intervals
            ), (label, intervals)


class TestShardedRouting:
    def test_rejects_bad_config(self):
        with pytest.raises(InvalidParameterError):
            create_store("sharded", shards=0, backend="exact")
        with pytest.raises(InvalidParameterError):
            create_store("sharded", shards=2, backend="sharded")

    def test_routing_is_deterministic_and_total(self):
        store = create_store("sharded", shards=5, backend="exact")
        for event_id in range(200):
            shard = store.shard_of(event_id)
            assert 0 <= shard < 5
            assert shard == store.shard_of(event_id)

    def test_vectorized_routing_matches_scalar(self):
        store = create_store("sharded", shards=7, backend="exact")
        ids = np.arange(500)
        vectorized = store._shards_of(ids)
        assert vectorized.tolist() == [
            store.shard_of(i) for i in ids.tolist()
        ]

    def test_events_land_wholly_in_their_shard(self):
        ids, ts = drip_and_surge(300)
        store = create_store("sharded", shards=3, backend="exact")
        store.extend_batch(ids, ts)
        for event_id in np.unique(ids).tolist():
            owner = store.shard_of(event_id)
            for shard_index, shard in enumerate(store.shards):
                expected = (
                    int((ids == event_id).sum())
                    if shard_index == owner
                    else 0
                )
                times = shard.inner.timestamps_of(event_id)
                assert len(times) == expected

    def test_fanout_equals_plain_backend(self):
        """Sharding the exact backend must be answer-invisible."""
        ids, ts = drip_and_surge()
        plain = create_store("exact")
        sharded = create_store("sharded", shards=4, backend="exact")
        plain.extend_batch(ids, ts)
        sharded.extend_batch(ids, ts)
        tau = 50.0
        for t in (300.0, 420.0, 900.0):
            assert sharded.bursty_event_query(
                t, 5.0, tau
            ) == plain.bursty_event_query(t, 5.0, tau)
        assert sharded.bursty_time_query(3, 20.0, tau) == plain.bursty_time_query(
            3, 20.0, tau
        )
        assert sharded.count == plain.count
        assert sharded.memory_elements() == plain.memory_elements()

    def test_shards_property_exposes_children(self):
        store = create_store("sharded", shards=3, backend="exact")
        assert len(store.shards) == 3
        assert all(child.backend_key == "exact" for child in store.shards)


class TestShardedExecutorLifecycle:
    """Regression: every fan-out used to spin up (and tear down) a fresh
    ThreadPoolExecutor; the pool is now created lazily once per store."""

    def _loaded_store(self):
        ids, ts = drip_and_surge(300)
        store = create_store("sharded", shards=3, backend="exact")
        store.extend_batch(ids, ts)
        return store, ids, ts

    def test_pool_is_lazy_and_persistent(self):
        store, ids, ts = self._loaded_store()
        assert store._pool is None  # nothing until the first fan-out
        store.point_query_batch(ids[:50], ts[:50] + 10.0, 25.0)
        pool = store._pool
        assert pool is not None
        store.point_query_batch(ids[:50], ts[:50] + 10.0, 25.0)
        store.bursty_event_query(420.0, 5.0, 50.0)
        assert store._pool is pool  # reused, not respawned
        store.close()

    def test_close_shuts_down_and_allows_reuse(self):
        store, ids, ts = self._loaded_store()
        before = store.bursty_event_query(420.0, 5.0, 50.0)
        store.close()
        assert store._pool is None
        # A store used after close() lazily recreates its pool.
        assert store.bursty_event_query(420.0, 5.0, 50.0) == before
        store.close()

    def test_results_identical_across_pool_lifecycles(self):
        store, ids, ts = self._loaded_store()
        query_ids, query_ts = ids[:80], ts[:80] + 5.0
        first = store.point_query_batch(query_ids, query_ts, 25.0)
        store.close()
        second = store.point_query_batch(query_ids, query_ts, 25.0)
        assert np.array_equal(first, second)
        store.close()

    def test_del_with_unused_pool_is_safe(self):
        store = create_store("sharded", shards=2, backend="exact")
        store.__del__()  # never fanned out; nothing to shut down
        store2, ids, ts = self._loaded_store()
        store2.point_query_batch(ids[:20], ts[:20] + 1.0, 25.0)
        store2.__del__()


class TestMerge:
    @pytest.mark.parametrize(
        "label,backend,cfg", BACKEND_MATRIX, ids=BACKEND_IDS
    )
    def test_chunked_build_matches_serial_for_exact_family(
        self, label, backend, cfg
    ):
        ids, ts = drip_and_surge()
        chunked = build_store_chunked(ids, ts, backend, n_chunks=3, **cfg)
        serial = create_store(backend, **cfg)
        serial.extend_batch(ids, ts)
        serial.finalize()
        assert chunked.count == serial.count
        if "exact" in label:
            for event_id in (0, 3):
                for t in (300.0, 420.0, 900.0):
                    assert chunked.point_query(
                        event_id, t, 25.0
                    ) == serial.point_query(event_id, t, 25.0)

    def test_merge_stores_requires_parts(self):
        with pytest.raises(InvalidParameterError):
            merge_stores([])

    def test_sharded_merge_rejects_mismatched_layout(self):
        ids, ts = drip_and_surge(100)
        a = create_store("sharded", shards=2, backend="exact")
        b = create_store("sharded", shards=3, backend="exact")
        a.extend_batch(ids, ts)
        with pytest.raises(InvalidParameterError):
            a.merge(b)

    def test_incompatible_cell_configs_rejected(self):
        a = create_store("cm-pbe-1", eta=8, universe_size=UNIVERSE)
        b = create_store("cm-pbe-1", eta=16, universe_size=UNIVERSE)
        a.update(1, 1.0)
        b.update(1, 5.0)
        with pytest.raises(InvalidParameterError):
            a.merge(b)


class TestAnalyzerFacade:
    def test_analyzer_wraps_prebuilt_store(self):
        from repro.core.queries import HistoricalBurstAnalyzer

        ids, ts = drip_and_surge()
        store = create_store("sharded", shards=2, backend="exact")
        store.extend_batch(ids, ts)
        analyzer = HistoricalBurstAnalyzer(store=store)
        assert analyzer.method == "sharded"
        assert analyzer.store is store
        direct = store.point_query(3, 420.0, 50.0)
        assert analyzer.point_query(3, 420.0, 50.0) == direct

    def test_analyzer_methods_route_through_registry(self):
        from repro.core.queries import HistoricalBurstAnalyzer

        analyzer = HistoricalBurstAnalyzer("exact")
        assert analyzer.store.backend_key == "exact"
        analyzer = HistoricalBurstAnalyzer(
            "cm-pbe-1", universe_size=16, with_index=True
        )
        assert analyzer.store.backend_key == "index"
        analyzer = HistoricalBurstAnalyzer(
            "cm-pbe-2", universe_size=16, with_index=False
        )
        assert analyzer.store.backend_key == "cm-pbe-2"
