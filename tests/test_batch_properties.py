"""Property tests: batch ingestion is bit-identical to scalar ingestion.

Every sketch in the stack grew an ``extend_batch`` / ``update_batch``
fast path in addition to its scalar ``update``.  These hypothesis tests
pin the contract that batching is *purely* a throughput optimization:

* feeding a record batch at once must leave byte-identical internal
  state to feeding the same records one ``update`` at a time,
* splitting one batch into arbitrary sub-batches must not change the
  result either (so ``--batch-size`` can never affect a built sketch),
* the chunk-and-merge builders must agree with their scalar-built
  equivalents and preserve exactness at kept corners.

State is compared on the sketches' full internals (corners, buffers,
polygons, pending elements, counts, accumulated error), not just query
answers — query-level equality could hide drift that surfaces later.
"""

from __future__ import annotations

import bisect

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cmpbe import CMPBE, DirectPBEMap
from repro.core.parallel import _chunks, merge_pbe1
from repro.core.pbe1 import PBE1
from repro.core.pbe2 import PBE2
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashing import HashFamily

# Polygon clipping makes some PBE2 examples mildly slow; a wall-clock
# deadline would turn that into flaky failures on loaded CI machines.
settings.register_profile("batch", deadline=None, max_examples=80)
settings.load_profile("batch")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def timestamp_batch(draw, max_size: int = 64):
    """A sorted timestamp column (integer/half-integer ticks, duplicates
    likely) with optional positive per-record counts."""
    raw = draw(st.lists(st.integers(0, 40), min_size=0, max_size=max_size))
    ts = sorted(t / 2 for t in raw)
    counts = None
    if draw(st.booleans()):
        counts = draw(
            st.lists(
                st.integers(1, 3), min_size=len(ts), max_size=len(ts)
            )
        )
    return ts, counts


@st.composite
def record_batch(draw, max_size: int = 64, n_ids: int = 8):
    """A CM-PBE record batch: parallel id / sorted-timestamp columns."""
    ts, counts = draw(timestamp_batch(max_size=max_size))
    ids = draw(
        st.lists(
            st.integers(0, n_ids - 1),
            min_size=len(ts),
            max_size=len(ts),
        )
    )
    return ids, ts, counts


@st.composite
def cut_points(draw, n: int, max_cuts: int = 4):
    """Sorted interior cut indices partitioning ``range(n)``."""
    cuts = draw(
        st.lists(st.integers(0, n), max_size=max_cuts)
    )
    return sorted(set(cuts))


def _sub_batches(ts, counts, cuts):
    """Split parallel columns at the given cut indices."""
    bounds = [0, *cuts, len(ts)]
    for lo, hi in zip(bounds, bounds[1:]):
        yield ts[lo:hi], None if counts is None else counts[lo:hi]


# ----------------------------------------------------------------------
# State snapshots (full internals, not query answers)
# ----------------------------------------------------------------------
def pbe1_state(sketch: PBE1):
    return (
        sketch._kept_xs,
        sketch._kept_ys,
        sketch._buffer_xs,
        sketch._buffer_ys,
        sketch._count,
        sketch._construction_error,
    )


def pbe2_state(sketch: PBE2):
    return (
        [(s.a, s.b, s.t_start, s.t_end) for s in sketch._segments],
        sketch._segment_starts,
        sketch._pending_t,
        sketch._pending_y,
        sketch._last_committed_t,
        sketch._last_committed_y,
        None if sketch._polygon is None else sketch._polygon.vertices,
        sketch._open_ranges,
        sketch._group_start,
        sketch._group_last_t,
        sketch._count,
    )


def _cell_state(cell):
    return pbe1_state(cell) if isinstance(cell, PBE1) else pbe2_state(cell)


def cmpbe_state(sketch: CMPBE):
    return (
        sketch._count,
        [[_cell_state(cell) for cell in row] for row in sketch._cells],
    )


def direct_map_state(sketch: DirectPBEMap):
    return (
        sketch._count,
        {eid: _cell_state(cell) for eid, cell in sketch._cells.items()},
    )


def _feed_scalar(sketch, ts, counts):
    if counts is None:
        for t in ts:
            sketch.update(t)
    else:
        for t, c in zip(ts, counts):
            sketch.update(t, c)


# ----------------------------------------------------------------------
# Hashing and Count-Min
# ----------------------------------------------------------------------
@given(
    items=st.lists(st.integers(0, 2**62), min_size=1, max_size=50),
    depth=st.integers(1, 4),
    width=st.integers(1, 97),
    seed=st.integers(0, 10),
)
def test_hash_many_matches_scalar_hash_all(items, depth, width, seed):
    family = HashFamily(depth=depth, width=width, seed=seed)
    matrix = family.hash_many(np.asarray(items, dtype=np.int64))
    assert matrix.shape == (len(items), depth)
    for i, item in enumerate(items):
        assert matrix[i].tolist() == list(family.hash_all(item))


@given(
    items=st.lists(st.integers(0, 200), min_size=0, max_size=60),
    with_counts=st.booleans(),
    data=st.data(),
)
def test_countmin_update_batch_matches_scalar(items, with_counts, data):
    counts = None
    if with_counts:
        counts = data.draw(
            st.lists(
                st.integers(1, 5),
                min_size=len(items),
                max_size=len(items),
            )
        )
    scalar = CountMinSketch(width=16, depth=3, seed=5)
    batched = CountMinSketch(width=16, depth=3, seed=5)
    if counts is None:
        for item in items:
            scalar.update(item)
    else:
        for item, c in zip(items, counts):
            scalar.update(item, c)
    batched.update_batch(
        np.asarray(items, dtype=np.int64),
        None if counts is None else np.asarray(counts, dtype=np.int64),
    )
    assert np.array_equal(scalar._table, batched._table)
    assert scalar._total == batched._total


# ----------------------------------------------------------------------
# PBE-1 / PBE-2: batch == scalar, and batching is associative
# ----------------------------------------------------------------------
@given(batch=timestamp_batch(), eta=st.integers(2, 4), data=st.data())
def test_pbe1_batch_matches_scalar(batch, eta, data):
    ts, counts = batch
    # Tiny buffers force compression mid-batch, the hard case.
    buffer_size = data.draw(st.integers(2, 7))
    scalar = PBE1(eta=eta, buffer_size=buffer_size)
    batched = PBE1(eta=eta, buffer_size=buffer_size)
    _feed_scalar(scalar, ts, counts)
    batched.extend_batch(ts, counts)
    assert pbe1_state(scalar) == pbe1_state(batched)


@given(batch=timestamp_batch(), data=st.data())
def test_pbe1_batch_split_invariance(batch, data):
    ts, counts = batch
    cuts = data.draw(cut_points(len(ts)))
    whole = PBE1(eta=3, buffer_size=5)
    split = PBE1(eta=3, buffer_size=5)
    whole.extend_batch(ts, counts)
    for sub_ts, sub_counts in _sub_batches(ts, counts, cuts):
        split.extend_batch(sub_ts, sub_counts)
    assert pbe1_state(whole) == pbe1_state(split)


@given(batch=timestamp_batch(), gamma=st.sampled_from([1.0, 2.5, 6.0]))
def test_pbe2_batch_matches_scalar(batch, gamma):
    ts, counts = batch
    scalar = PBE2(gamma=gamma)
    batched = PBE2(gamma=gamma)
    _feed_scalar(scalar, ts, counts)
    batched.extend_batch(ts, counts)
    assert pbe2_state(scalar) == pbe2_state(batched)


@given(batch=timestamp_batch(), data=st.data())
def test_pbe2_batch_split_invariance(batch, data):
    ts, counts = batch
    cuts = data.draw(cut_points(len(ts)))
    whole = PBE2(gamma=2.0)
    split = PBE2(gamma=2.0)
    whole.extend_batch(ts, counts)
    for sub_ts, sub_counts in _sub_batches(ts, counts, cuts):
        split.extend_batch(sub_ts, sub_counts)
    assert pbe2_state(whole) == pbe2_state(split)


# ----------------------------------------------------------------------
# CM-PBE and the direct map: grouped batch == interleaved scalar
# ----------------------------------------------------------------------
@given(batch=record_batch(), variant=st.sampled_from(["pbe1", "pbe2"]))
def test_cmpbe_batch_matches_scalar(batch, variant):
    ids, ts, counts = batch

    def make():
        if variant == "pbe1":
            return CMPBE.with_pbe1(
                eta=2, width=4, depth=2, buffer_size=4, seed=3
            )
        return CMPBE.with_pbe2(gamma=2.0, width=4, depth=2, seed=3)

    scalar, batched = make(), make()
    if counts is None:
        for e, t in zip(ids, ts):
            scalar.update(e, t)
    else:
        for e, t, c in zip(ids, ts, counts):
            scalar.update(e, t, c)
    batched.extend_batch(ids, ts, counts)
    assert cmpbe_state(scalar) == cmpbe_state(batched)


@given(batch=record_batch(), data=st.data())
def test_cmpbe_batch_split_invariance(batch, data):
    ids, ts, counts = batch
    cuts = data.draw(cut_points(len(ts)))
    bounds = [0, *cuts, len(ts)]

    def make():
        return CMPBE.with_pbe1(
            eta=2, width=4, depth=2, buffer_size=4, seed=3
        )

    whole, split = make(), make()
    whole.extend_batch(ids, ts, counts)
    for lo, hi in zip(bounds, bounds[1:]):
        split.extend_batch(
            ids[lo:hi],
            ts[lo:hi],
            None if counts is None else counts[lo:hi],
        )
    assert cmpbe_state(whole) == cmpbe_state(split)


@given(batch=record_batch())
def test_direct_map_batch_matches_scalar(batch):
    ids, ts, counts = batch
    scalar = DirectPBEMap(lambda: PBE1(eta=2, buffer_size=4))
    batched = DirectPBEMap(lambda: PBE1(eta=2, buffer_size=4))
    if counts is None:
        for e, t in zip(ids, ts):
            scalar.update(e, t)
    else:
        for e, t, c in zip(ids, ts, counts):
            scalar.update(e, t, c)
    batched.extend_batch(ids, ts, counts)
    assert direct_map_state(scalar) == direct_map_state(batched)


# ----------------------------------------------------------------------
# Stress shapes for the vectorized ingest cores: degenerate batches that
# exercise the hull-pruning and polygon-clipping edge cases — duplicate
# runs (zero-width staircase steps), monotone ramps (no pruning ever
# fires), all-equal counts (collinear hull candidates), and single
# elements (the vector paths' base case).
# ----------------------------------------------------------------------
@st.composite
def stress_batch(draw, max_size: int = 64):
    """A degenerate timestamp column drawn from one of the shapes the
    vectorized kernels are most likely to get wrong."""
    shape = draw(
        st.sampled_from(["duplicates", "ramp", "equal_counts", "single"])
    )
    if shape == "single":
        ts = [draw(st.integers(0, 40)) / 2]
    elif shape == "duplicates":
        # Few distinct ticks, long runs of each.
        ticks = draw(
            st.lists(
                st.integers(0, 10), min_size=1, max_size=5, unique=True
            )
        )
        runs = [
            (tick, draw(st.integers(1, max_size // len(ticks) + 1)))
            for tick in sorted(ticks)
        ]
        ts = [float(tick) for tick, n in runs for _ in range(n)]
    else:
        # Strictly increasing ramp (integer or half-integer stride).
        start = draw(st.integers(0, 10))
        stride = draw(st.sampled_from([1, 2]))
        n = draw(st.integers(1, max_size))
        ts = [(start + i * stride) / 2 for i in range(n)]
    counts = None
    if shape == "equal_counts":
        counts = [draw(st.integers(1, 3))] * len(ts)
    elif draw(st.booleans()):
        counts = draw(
            st.lists(st.integers(1, 3), min_size=len(ts), max_size=len(ts))
        )
    return ts, counts


@given(batch=stress_batch(), eta=st.integers(2, 4), data=st.data())
def test_pbe1_stress_batch_matches_scalar(batch, eta, data):
    ts, counts = batch
    buffer_size = data.draw(st.integers(2, 7))
    scalar = PBE1(eta=eta, buffer_size=buffer_size)
    batched = PBE1(eta=eta, buffer_size=buffer_size)
    _feed_scalar(scalar, ts, counts)
    batched.extend_batch(ts, counts)
    assert pbe1_state(scalar) == pbe1_state(batched)


@given(batch=stress_batch(), gamma=st.sampled_from([1.0, 2.5, 6.0]))
def test_pbe2_stress_batch_matches_scalar(batch, gamma):
    ts, counts = batch
    scalar = PBE2(gamma=gamma)
    batched = PBE2(gamma=gamma)
    _feed_scalar(scalar, ts, counts)
    batched.extend_batch(ts, counts)
    assert pbe2_state(scalar) == pbe2_state(batched)


# ----------------------------------------------------------------------
# Chunk-boundary sweep: split one fixed workload at EVERY offset.
# Hypothesis samples cut points; these deterministic sweeps leave no
# boundary unchecked, so an off-by-one at a specific split position
# cannot hide behind example sampling.
# ----------------------------------------------------------------------
_SWEEP_TS = [0.0, 0.0, 0.5, 1.0, 1.0, 1.0, 2.5, 3.0, 3.0, 4.5, 4.5, 6.0]
_SWEEP_COUNTS = [1, 2, 1, 3, 1, 1, 2, 1, 1, 3, 1, 2]


def test_pbe1_split_at_every_offset_matches_whole():
    whole = PBE1(eta=3, buffer_size=4)
    whole.extend_batch(_SWEEP_TS, _SWEEP_COUNTS)
    expected = pbe1_state(whole)
    for cut in range(len(_SWEEP_TS) + 1):
        split = PBE1(eta=3, buffer_size=4)
        split.extend_batch(_SWEEP_TS[:cut], _SWEEP_COUNTS[:cut])
        split.extend_batch(_SWEEP_TS[cut:], _SWEEP_COUNTS[cut:])
        assert pbe1_state(split) == expected, f"cut at {cut}"


def test_pbe2_split_at_every_offset_matches_whole():
    whole = PBE2(gamma=2.0)
    whole.extend_batch(_SWEEP_TS, _SWEEP_COUNTS)
    expected = pbe2_state(whole)
    for cut in range(len(_SWEEP_TS) + 1):
        split = PBE2(gamma=2.0)
        split.extend_batch(_SWEEP_TS[:cut], _SWEEP_COUNTS[:cut])
        split.extend_batch(_SWEEP_TS[cut:], _SWEEP_COUNTS[cut:])
        assert pbe2_state(split) == expected, f"cut at {cut}"


# ----------------------------------------------------------------------
# Whole-store equivalence across the backend matrix: scalar feed, one
# whole batch, and a two-way split must all serialize identically.
# ----------------------------------------------------------------------
_STORE_IDS = [0, 3, 1, 3, 7, 2, 3, 0, 5, 3, 1, 7, 4, 3, 2, 0, 6, 3, 5, 1, 3, 7, 0, 3]
_STORE_TS = [
    0.0, 0.0, 0.5, 1.0, 1.5, 1.5, 2.0, 3.0, 3.0, 3.5, 4.0, 5.0,
    5.0, 5.5, 6.0, 7.5, 8.0, 8.0, 9.0, 9.5, 10.0, 10.5, 11.0, 11.0,
]


def _matrix_store(backend, cfg):
    from repro.core.store import create_store

    return create_store(backend, **cfg)


def _store_matrix_params():
    import pytest as _pytest

    from tests.backends import BACKEND_IDS, BACKEND_MATRIX

    return _pytest.mark.parametrize(
        "label,backend,cfg", BACKEND_MATRIX, ids=BACKEND_IDS
    )


@_store_matrix_params()
def test_store_batch_matches_scalar_across_matrix(label, backend, cfg):
    from repro.core.serialize import save_store

    scalar = _matrix_store(backend, cfg)
    for event_id, t in zip(_STORE_IDS, _STORE_TS):
        scalar.update(event_id, t)
    batched = _matrix_store(backend, cfg)
    batched.extend_batch(_STORE_IDS, _STORE_TS)

    for cut in (0, 1, 5, 11, 12, 13, 23, 24):
        split = _matrix_store(backend, cfg)
        split.extend_batch(_STORE_IDS[:cut], _STORE_TS[:cut])
        split.extend_batch(_STORE_IDS[cut:], _STORE_TS[cut:])
        assert save_store(split) == save_store(batched), f"cut at {cut}"
    assert save_store(scalar) == save_store(batched)


# ----------------------------------------------------------------------
# Chunk-and-merge: numpy-chunked parts == scalar-built parts, and the
# merged sketch stays exact at its kept corners.
# ----------------------------------------------------------------------
@given(
    batch=timestamp_batch(max_size=80),
    n_chunks=st.integers(1, 5),
)
def test_chunked_parts_match_scalar_parts(batch, n_chunks):
    ts, _ = batch
    if not ts:
        return
    chunks = _chunks(ts, n_chunks)
    batch_parts, scalar_parts = [], []
    for chunk in chunks:
        bp = PBE1(eta=3, buffer_size=6)
        bp.extend_batch(chunk)
        bp.flush()
        batch_parts.append(bp)
        sp = PBE1(eta=3, buffer_size=6)
        sp.extend(chunk.tolist())
        sp.flush()
        scalar_parts.append(sp)
    merged_batch = merge_pbe1(batch_parts)
    merged_scalar = merge_pbe1(scalar_parts)
    assert pbe1_state(merged_batch) == pbe1_state(merged_scalar)


@given(batch=timestamp_batch(max_size=80), n_chunks=st.integers(1, 4))
def test_merged_kept_corners_are_exact(batch, n_chunks):
    """Merged corners sit exactly on the exact cumulative staircase.

    PBE-1 keeps a *subset* of exact corners and merging only offsets
    counts, so every kept corner of the merged sketch must report the
    true ``F(t)`` — and the total count must be the stream length.
    """
    ts, _ = batch
    if not ts:
        return
    chunks = _chunks(ts, n_chunks)
    parts = []
    for chunk in chunks:
        part = PBE1(eta=3, buffer_size=6)
        part.extend_batch(chunk)
        parts.append(part)
    merged = merge_pbe1(parts)
    assert merged.count == len(ts)
    for x, y in zip(merged._kept_xs, merged._kept_ys):
        assert y == bisect.bisect_right(ts, x)
