"""Tests for the tracing layer (repro.core.tracing): span parenting,
per-trace sampling, the bounded ring, torn-write-safe JSONL export,
the slow-op log, summary percentiles, Perfetto export, and the
acceptance property — a parallel ingest run stitches into one trace
tree spanning the coordinator and every writer process."""

from __future__ import annotations

import json
import logging

import pytest

from repro.cli import main
from repro.core.errors import InvalidParameterError
from repro.core.metrics import MetricsRegistry, global_registry
from repro.core.tracing import (
    JsonlSpanExporter,
    Tracer,
    current_context,
    current_trace_id,
    load_trace,
    perfetto_trace,
    read_span_file,
    render_summary,
    set_tracer,
    span,
    stitch_spans,
    summarize_spans,
)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Isolate every test from the process-wide tracer (and from the
    REPRO_TRACE env probe, which set_tracer marks as done)."""
    previous = set_tracer(None)
    yield
    set_tracer(previous)


class TestSpans:
    def test_context_manager_parenting(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        child, parent = tracer.finished_spans()
        assert child["name"] == "child"
        assert parent["name"] == "parent"
        assert parent["parent_id"] is None
        assert child["parent_id"] == parent["span_id"]
        assert child["trace_id"] == parent["trace_id"]

    def test_siblings_share_a_parent_not_each_other(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second, root = tracer.finished_spans()
        assert first["parent_id"] == root["span_id"]
        assert second["parent_id"] == root["span_id"]

    def test_attributes_status_and_error_capture(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", records=3) as active:
                active.set_attribute("extra", "yes")
                raise ValueError("no")
        (finished,) = tracer.finished_spans()
        assert finished["status"] == "error"
        assert finished["attributes"] == {"records": 3, "extra": "yes"}
        assert finished["duration"] >= 0.0

    def test_explicit_remote_parent_tuple(self):
        tracer = Tracer()
        with tracer.span("local-root"):
            ctx = current_context()
        assert ctx is not None
        remote = Tracer(process="writer-7")
        with remote.span("remote-child", parent=ctx):
            pass
        (child,) = remote.finished_spans()
        assert (child["trace_id"], child["parent_id"]) == ctx
        assert child["process"] == "writer-7"

    def test_record_span_is_retroactive(self):
        tracer = Tracer()
        tracer.record_span(
            "queue.wait", start=123.0, duration=0.25, parent=("t1", "s1")
        )
        (finished,) = tracer.finished_spans()
        assert finished["trace_id"] == "t1"
        assert finished["parent_id"] == "s1"
        assert finished["start"] == 123.0
        assert finished["duration"] == 0.25

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(ring_size=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [s["name"] for s in tracer.finished_spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_module_helper_is_noop_without_a_tracer(self):
        assert current_trace_id() is None
        with span("nothing") as active:
            active.set_attribute("ignored", 1)
            assert current_context() is None

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            Tracer(sample_rate=1.5)


class TestSampling:
    def test_sampling_decides_whole_traces(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("root"):
            assert current_context() is None  # unsampled trace
            with tracer.span("child"):
                pass
        assert tracer.finished_spans() == []

    def test_rate_is_roughly_honoured_per_root(self):
        tracer = Tracer(sample_rate=0.5, seed=11, ring_size=4096)
        for _ in range(400):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        spans = tracer.finished_spans()
        assert len(spans) % 2 == 0  # child always follows its root
        assert 200 < len(spans) < 600  # ~400 of 800 at rate 0.5

    def test_explicit_parent_forces_sampling(self):
        # A remote parent only exists because the remote side sampled
        # the trace, so the local side must not re-roll the dice.
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("child", parent=("t1", "s1")):
            pass
        (finished,) = tracer.finished_spans()
        assert finished["trace_id"] == "t1"


class TestJsonlExport:
    def test_spans_export_as_one_line_each(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(exporters=[JsonlSpanExporter(path)])
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.close()
        lines = path.read_bytes().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_torn_tail_is_dropped_quietly(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(exporters=[JsonlSpanExporter(path)])
        with tracer.span("whole"):
            pass
        tracer.close()
        with open(path, "ab") as handle:
            handle.write(b'{"name": "torn half')  # no newline: a tear
        spans = read_span_file(path)
        assert [s["name"] for s in spans] == ["whole"]
        # strict mode also tolerates the newline-less tail — only a
        # *mid-file* tear is corruption.
        assert read_span_file(path, strict=True) == spans

    def test_mid_file_tear_warns_or_raises(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(exporters=[JsonlSpanExporter(path)])
        with tracer.span("first"):
            pass
        with open(path, "ab") as handle:
            handle.write(b"not json\n")
        with tracer.span("second"):
            pass
        tracer.close()
        spans = read_span_file(path)  # lenient: skip the bad line
        assert [s["name"] for s in spans] == ["first", "second"]
        with pytest.raises(InvalidParameterError):
            read_span_file(path, strict=True)

    def test_load_trace_concatenates_a_directory(self, tmp_path):
        for name in ("spans-b.jsonl", "spans-a.jsonl"):
            tracer = Tracer(exporters=[JsonlSpanExporter(tmp_path / name)])
            with tracer.span(name):
                pass
            tracer.close()
        spans = load_trace(tmp_path)
        # Deterministic order: files sorted by name.
        assert [s["name"] for s in spans] == [
            "spans-a.jsonl", "spans-b.jsonl",
        ]


class TestSlowOps:
    def test_slow_spans_log_with_ancestry(self, caplog):
        registry = global_registry()
        registry.reset()
        tracer = Tracer(slow_threshold_ms=0.0)  # everything is slow
        with caplog.at_level(logging.WARNING, logger="repro.core.tracing"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        slow = tracer.slow_ops()
        assert [entry["name"] for entry in slow] == ["inner", "outer"]
        assert slow[0]["ancestry"] == ["outer", "inner"]
        assert "outer > inner" in caplog.text
        counters = registry.snapshot()["counters"]
        assert counters["trace_slow_ops_total"]["value"] == 2

    def test_fast_spans_stay_out_of_the_slow_log(self):
        tracer = Tracer(slow_threshold_ms=60_000.0)
        with tracer.span("quick"):
            pass
        assert tracer.slow_ops() == []


class TestSummary:
    def _spans(self):
        tracer = Tracer()
        for duration in (0.010, 0.020, 0.030, 0.040):
            tracer.record_span("op", start=0.0, duration=duration)
        tracer.record_span("other", start=0.0, duration=0.5)
        return tracer.finished_spans()

    def test_percentiles_and_totals(self):
        rows = summarize_spans(self._spans())
        assert [row["name"] for row in rows] == ["op", "other"]
        op = rows[0]
        assert op["count"] == 4
        assert op["p50"] == pytest.approx(0.020)
        assert op["p99"] == pytest.approx(0.040)
        assert op["max"] == pytest.approx(0.040)
        assert op["total"] == pytest.approx(0.100)

    def test_render_summary_table(self):
        text = render_summary(summarize_spans(self._spans()))
        lines = text.splitlines()
        assert lines[0].split() == [
            "span", "count", "p50_ms", "p99_ms", "total_ms",
        ]
        assert lines[1].split()[:2] == ["op", "4"]
        assert "20.000" in lines[1]  # p50 in milliseconds


class TestPerfetto:
    def test_export_is_valid_trace_event_json(self):
        coordinator = Tracer(process="coordinator")
        with coordinator.span("root", records=8):
            ctx = current_context()
        writer = Tracer(process="writer-0")
        with writer.span("child", parent=ctx):
            pass
        # Both tracers live in this test process; fake the writer's pid
        # so the per-process metadata events both appear, as they would
        # for a real multi-process trace.
        writer_spans = [
            dict(s, pid=s["pid"] + 1) for s in writer.finished_spans()
        ]
        payload = perfetto_trace(
            coordinator.finished_spans() + writer_spans
        )
        # Round-trip through JSON: must be serializable as-is.
        payload = json.loads(json.dumps(payload))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"root", "child"}
        for event in complete:
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        assert {e["args"]["name"] for e in metadata} == {
            "coordinator", "writer-0",
        }
        root = next(e for e in complete if e["name"] == "root")
        assert root["args"]["records"] == 8


class TestExemplars:
    def test_histogram_observation_carries_the_trace_id(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "x", buckets=(1.0,))
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with tracer.span("traced"):
                histogram.observe(0.5)
                trace_id = current_trace_id()
        finally:
            set_tracer(previous)
        snapshot = registry.snapshot()["histograms"]["lat_seconds"]
        assert snapshot["exemplar"] == {"trace_id": trace_id, "value": 0.5}

    def test_untraced_observations_keep_the_old_schema(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "x", buckets=(1.0,))
        histogram.observe(0.5)
        assert "exemplar" not in registry.snapshot()["histograms"][
            "lat_seconds"
        ]


class TestEnvToggle:
    def test_repro_trace_env_builds_a_tracer(self, tmp_path, monkeypatch):
        import repro.core.tracing as tracing

        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1.0")
        monkeypatch.setenv("REPRO_TRACE_SLOW_MS", "250")
        monkeypatch.setattr(tracing, "_TRACER", None)
        monkeypatch.setattr(tracing, "_ENV_CHECKED", False)
        tracer = tracing.get_tracer()
        try:
            assert tracer is not None
            assert tracer.slow_threshold_ms == 250.0
            with tracing.span("from-env"):
                pass
            tracer.close()
            spans = load_trace(tmp_path)
            assert [s["name"] for s in spans] == ["from-env"]
        finally:
            tracing.set_tracer(None)


class TestStitchedIngestTrace:
    """Acceptance: ``repro ingest --durable DIR --writers N --trace T``
    produces ONE trace tree spanning the coordinator and every writer
    process, verified by walking parent ids across process-tagged
    spans."""

    def test_parallel_ingest_stitches_one_tree(self, tmp_path, capsys):
        stream = tmp_path / "stream.bin"
        assert main([
            "generate", "olympicrio", "--out", str(stream),
            "--events", "16", "--mentions", "4000",
        ]) == 0
        durable = tmp_path / "durable"
        trace_dir = durable / "trace"
        assert main([
            "ingest", str(stream), "--durable", str(durable),
            "--writers", "4", "--backend", "exact",
            "--trace", str(trace_dir), "--batch-size", "512",
        ]) == 0
        capsys.readouterr()

        spans = load_trace(trace_dir, strict=True)
        tree = stitch_spans(spans)
        assert tree["orphans"] == []
        roots = {s["name"] for s in tree["roots"]}
        assert "ingest" in roots
        # Anything else rooting its own trace is per-writer startup,
        # which happens before any work is dispatched.
        assert roots - {"ingest"} <= {"writer.open"}

        ingest_root = next(
            s for s in tree["roots"] if s["name"] == "ingest"
        )
        trace_id = ingest_root["trace_id"]
        by_id = tree["by_id"]
        ingest_spans = [s for s in spans if s["trace_id"] == trace_id]
        # The single ingest trace covers all five processes...
        assert {s["process"] for s in ingest_spans} == {
            "coordinator", "writer-0", "writer-1", "writer-2", "writer-3",
        }
        # ...and every span in it walks up, hop by hop, to the root —
        # including across the process boundary (writer span whose
        # parent lives in the coordinator's span file).
        crossings = 0
        for started in ingest_spans:
            walk = started
            seen = set()
            while walk["parent_id"] is not None:
                assert walk["span_id"] not in seen, "parent cycle"
                seen.add(walk["span_id"])
                parent = by_id[walk["parent_id"]]
                if parent["process"] != walk["process"]:
                    crossings += 1
                walk = parent
            assert walk["span_id"] == ingest_root["span_id"]
        assert crossings > 0, "no cross-process edges were exercised"

        writer_applies = [
            s for s in ingest_spans if s["name"] == "writer.apply_batch"
        ]
        assert writer_applies
        for applied in writer_applies:
            assert by_id[applied["parent_id"]]["name"] == (
                "coordinator.extend_batch"
            )
