"""Tests for CM-PBE (mixed-stream sketches) and the direct PBE map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactBurstStore
from repro.core.cmpbe import CMPBE, DirectPBEMap
from repro.core.errors import InvalidParameterError
from repro.core.pbe1 import PBE1


class TestConstruction:
    def test_invalid_dimensions(self):
        with pytest.raises(InvalidParameterError):
            CMPBE.with_pbe1(eta=10, width=0, depth=3)

    def test_invalid_combiner(self):
        with pytest.raises(InvalidParameterError):
            CMPBE.with_pbe1(eta=10, width=4, depth=3, combiner="mean")

    def test_paper_dimensions(self):
        width, depth = CMPBE.dimensions_from_error_bounds(0.5, 0.2)
        assert width == 6 and depth == 2

    def test_count(self, mixed_stream):
        sketch = CMPBE.with_pbe1(eta=20, width=8, depth=3, buffer_size=100)
        sketch.extend(mixed_stream)
        assert sketch.count == len(mixed_stream)


class TestAccuracy:
    @pytest.fixture(scope="class")
    def exact(self, mixed_stream) -> ExactBurstStore:
        return ExactBurstStore.from_stream(mixed_stream)

    @pytest.fixture(scope="class", params=["pbe1", "pbe2"])
    def sketch(self, request, mixed_stream) -> CMPBE:
        if request.param == "pbe1":
            sketch = CMPBE.with_pbe1(
                eta=80, width=8, depth=3, buffer_size=300
            )
        else:
            sketch = CMPBE.with_pbe2(gamma=10.0, width=8, depth=3)
        sketch.extend(mixed_stream)
        sketch.finalize()
        return sketch

    def test_cumulative_frequency_close(self, sketch, exact, mixed_stream):
        t_end = mixed_stream.span[1]
        n = len(mixed_stream)
        for event_id in (0, 5, 11):
            for t in (t_end * 0.3, t_end * 0.6, t_end):
                estimate = sketch.cumulative_frequency(event_id, t)
                truth = exact.cumulative_frequency(event_id, t)
                # Theorem 1: |err| <= eps*N + Delta whp; generous slack.
                assert abs(estimate - truth) <= 0.5 * n

    def test_burst_detected(self, sketch, exact):
        # Event 5 bursts hugely around t=500 in the fixture.
        tau = 50.0
        estimate = sketch.burstiness(5, 520.0, tau)
        truth = exact.burstiness(5, 520.0, tau)
        assert truth > 300
        assert estimate == pytest.approx(truth, rel=0.35)

    def test_quiet_event_not_bursty(self, sketch, exact):
        tau = 50.0
        estimate = sketch.burstiness(7, 520.0, tau)
        truth = exact.burstiness(7, 520.0, tau)
        assert abs(truth) < 60
        assert abs(estimate) < 250

    def test_curve_view(self, sketch):
        view = sketch.curve(5)
        assert view.value(500.0) == sketch.cumulative_frequency(5, 500.0)
        assert view.size_in_bytes() == sketch.size_in_bytes()

    def test_segment_starts_nonempty(self, sketch):
        assert sketch.segment_starts(5)


class TestCombiners:
    def test_min_combiner_never_above_median_by_construction(
        self, mixed_stream
    ):
        median = CMPBE.with_pbe1(
            eta=40, width=4, depth=3, buffer_size=200, combiner="median"
        )
        minimum = CMPBE.with_pbe1(
            eta=40, width=4, depth=3, buffer_size=200, combiner="min"
        )
        median.extend(mixed_stream)
        minimum.extend(mixed_stream)
        for event_id in (0, 5, 9):
            t = 700.0
            assert minimum.cumulative_frequency(
                event_id, t
            ) <= median.cumulative_frequency(event_id, t)


class TestSpace:
    def test_size_grows_with_eta(self, mixed_stream):
        small = CMPBE.with_pbe1(eta=10, width=4, depth=2, buffer_size=100)
        large = CMPBE.with_pbe1(eta=80, width=4, depth=2, buffer_size=100)
        small.extend(mixed_stream)
        large.extend(mixed_stream)
        small.finalize()
        large.finalize()
        assert small.size_in_bytes() < large.size_in_bytes()

    def test_much_smaller_than_exact(self, mixed_stream):
        sketch = CMPBE.with_pbe1(eta=20, width=4, depth=2, buffer_size=300)
        sketch.extend(mixed_stream)
        sketch.finalize()
        exact_bytes = 8 * len(mixed_stream)
        assert sketch.size_in_bytes() < exact_bytes / 3


class TestDirectPBEMap:
    def test_exact_per_id_when_budget_large(self, mixed_stream):
        direct = DirectPBEMap(lambda: PBE1(eta=10_000, buffer_size=10_000))
        direct.extend(mixed_stream)
        direct.finalize()
        exact = ExactBurstStore.from_stream(mixed_stream)
        for event_id in (0, 5, 15):
            for t in (300.0, 600.0, 999.0):
                assert direct.cumulative_frequency(event_id, t) == (
                    pytest.approx(exact.cumulative_frequency(event_id, t))
                )

    def test_unseen_id_is_zero(self):
        direct = DirectPBEMap(lambda: PBE1(eta=4, buffer_size=10))
        assert direct.cumulative_frequency(42, 1.0) == 0.0
        assert direct.segment_starts(42) == []

    def test_burstiness_matches_exact(self, mixed_stream):
        direct = DirectPBEMap(lambda: PBE1(eta=10_000, buffer_size=10_000))
        direct.extend(mixed_stream)
        exact = ExactBurstStore.from_stream(mixed_stream)
        assert direct.burstiness(5, 520.0, 50.0) == pytest.approx(
            exact.burstiness(5, 520.0, 50.0)
        )

    def test_count_and_size(self, mixed_stream):
        direct = DirectPBEMap(lambda: PBE1(eta=10, buffer_size=50))
        direct.extend(mixed_stream)
        assert direct.count == len(mixed_stream)
        assert direct.size_in_bytes() > 0
