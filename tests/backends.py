"""Shared backend matrix for the store-layer test suite.

Every registered backend key must appear here (ShardedBurstStore at two
or more shard counts).  ``tests/test_store_registry.py`` — wired into CI
as the registry-completeness check — fails the build whenever a key in
:func:`repro.core.store.backend_keys` is missing from this matrix, so a
newly registered backend automatically joins the parametrized
differential, query and round-trip tests or breaks the build trying.
"""

from __future__ import annotations

UNIVERSE = 48

# Sketch knobs sized so the fixed-seed workloads below stay deterministic
# yet collisions are actually exercised (width < universe).
_PBE1 = dict(eta=60, buffer_size=400, width=16, depth=5, seed=0)
_PBE2 = dict(gamma=12.0, unit=1.0, width=16, depth=5, seed=0)

# (label, backend key, create_store config)
BACKEND_MATRIX: list[tuple[str, str, dict]] = [
    ("exact", "exact", {}),
    ("cm-pbe-1", "cm-pbe-1", dict(universe_size=UNIVERSE, **_PBE1)),
    ("cm-pbe-2", "cm-pbe-2", dict(universe_size=UNIVERSE, **_PBE2)),
    ("direct-pbe1", "direct", dict(cell="pbe1", eta=60, buffer_size=400)),
    ("direct-pbe2", "direct", dict(cell="pbe2", gamma=12.0, unit=1.0)),
    ("index-pbe1", "index", dict(universe_size=UNIVERSE, cell="pbe1", **_PBE1)),
    ("index-pbe2", "index", dict(universe_size=UNIVERSE, cell="pbe2", **_PBE2)),
    ("sharded-x2-exact", "sharded", dict(shards=2, backend="exact")),
    ("sharded-x4-exact", "sharded", dict(shards=4, backend="exact")),
    (
        "sharded-x3-cm-pbe-1",
        "sharded",
        dict(shards=3, backend="cm-pbe-1", universe_size=UNIVERSE, **_PBE1),
    ),
    ("instrumented-exact", "instrumented", dict(backend="exact")),
    (
        "instrumented-cm-pbe-1",
        "instrumented",
        dict(backend="cm-pbe-1", universe_size=UNIVERSE, **_PBE1),
    ),
    # Ephemeral durable lifecycle (directory=None): the tiny seal
    # threshold forces several memtable → segment transitions under the
    # standard workloads, so the matrix exercises the merge-fan read
    # path, not just a lone memtable.
    ("durable-exact", "durable", dict(backend="exact", seal_elements=64)),
    (
        "durable-cm-pbe-1",
        "durable",
        dict(
            backend="cm-pbe-1",
            seal_elements=64,
            universe_size=UNIVERSE,
            **_PBE1,
        ),
    ),
]

BACKEND_IDS = [label for label, _, _ in BACKEND_MATRIX]

# Labels whose answers must match the exact oracle bit-for-bit (no
# sketching anywhere in the stack).
EXACT_LABELS = {
    "exact",
    "sharded-x2-exact",
    "sharded-x4-exact",
    "instrumented-exact",
    "durable-exact",
}


def covered_keys() -> set[str]:
    """Backend keys exercised by the matrix."""
    return {backend for _, backend, _ in BACKEND_MATRIX}


def sharded_shard_counts() -> set[int]:
    """Distinct shard counts the matrix runs ShardedBurstStore at."""
    return {
        cfg["shards"]
        for _, backend, cfg in BACKEND_MATRIX
        if backend == "sharded"
    }
