"""Tests for the dyadic decomposition and the bursty-event index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactBurstStore
from repro.core.dyadic import BurstyEventIndex
from repro.core.errors import InvalidParameterError
from repro.sketch.dyadic_ranges import DyadicDecomposition


class TestDyadicDecomposition:
    def test_padding_to_power_of_two(self):
        assert DyadicDecomposition(5).padded_size == 8
        assert DyadicDecomposition(8).padded_size == 8
        assert DyadicDecomposition(9).padded_size == 16

    def test_levels(self):
        assert DyadicDecomposition(8).n_levels == 3
        assert DyadicDecomposition(1).n_levels == 0

    def test_range_id_leaf_is_identity(self):
        dec = DyadicDecomposition(16)
        for event_id in range(16):
            assert dec.range_id(event_id, 0) == event_id

    def test_range_id_root_is_zero(self):
        dec = DyadicDecomposition(16)
        for event_id in range(16):
            assert dec.range_id(event_id, 4) == 0

    def test_range_bounds_roundtrip(self):
        dec = DyadicDecomposition(16)
        for level in range(dec.n_levels + 1):
            for event_id in range(16):
                rid = dec.range_id(event_id, level)
                low, high = dec.range_bounds(rid, level)
                assert low <= event_id <= high

    def test_bounds_clip_to_universe(self):
        dec = DyadicDecomposition(5)  # padded to 8
        low, high = dec.range_bounds(0, 3)
        assert (low, high) == (0, 4)

    def test_children_partition_parent(self):
        dec = DyadicDecomposition(16)
        for level in range(1, dec.n_levels + 1):
            for rid in range(dec.n_ranges(level)):
                left, right = dec.children(rid, level)
                parent_low, parent_high = dec.range_bounds(rid, level)
                left_low, _ = dec.range_bounds(left, level - 1)
                try:
                    _, right_high = dec.range_bounds(right, level - 1)
                except InvalidParameterError:
                    continue  # right child entirely past the universe
                assert left_low == parent_low
                assert right_high == parent_high

    def test_parent_inverts_children(self):
        dec = DyadicDecomposition(16)
        left, right = dec.children(3, 2)
        assert dec.parent(left, 1) == 3
        assert dec.parent(right, 1) == 3

    def test_validation(self):
        dec = DyadicDecomposition(8)
        with pytest.raises(InvalidParameterError):
            dec.range_id(8, 0)
        with pytest.raises(InvalidParameterError):
            dec.range_id(0, 9)
        with pytest.raises(InvalidParameterError):
            dec.children(0, 0)
        with pytest.raises(InvalidParameterError):
            dec.parent(0, 3)
        with pytest.raises(InvalidParameterError):
            DyadicDecomposition(0)


def _burst_stream(universe: int, bursty_ids: dict[int, float], seed: int = 0):
    """Background Poisson noise plus planted bursts at given times."""
    rng = np.random.default_rng(seed)
    records = []
    for t in range(1_000):
        for _ in range(rng.poisson(1.0)):
            records.append((int(rng.integers(0, universe)), float(t)))
        for event_id, onset in bursty_ids.items():
            if onset <= t < onset + 40:
                for _ in range(rng.poisson(12)):
                    records.append((event_id, float(t)))
    records.sort(key=lambda r: r[1])
    return records


class TestBurstyEventIndex:
    @pytest.fixture(scope="class")
    def planted(self):
        universe = 64
        records = _burst_stream(universe, {5: 480, 40: 700})
        index = BurstyEventIndex.with_pbe1(
            universe, eta=60, width=8, depth=3, buffer_size=300
        )
        index.extend(records)
        index.finalize()
        exact = ExactBurstStore.from_stream(records)
        return universe, index, exact

    def test_detects_planted_bursts(self, planted):
        universe, index, exact = planted
        tau = 40.0
        hits = index.bursty_events(520.0, 200.0, tau)
        assert 5 in {hit.event_id for hit in hits}
        hits = index.bursty_events(740.0, 200.0, tau)
        assert 40 in {hit.event_id for hit in hits}

    def test_agrees_with_exact_at_high_threshold(self, planted):
        universe, index, exact = planted
        tau = 40.0
        truth = {
            h.event_id for h in exact.bursty_events(520.0, 250.0, tau)
        }
        found = {
            h.event_id for h in index.bursty_events(520.0, 250.0, tau)
        }
        assert truth, "the planted burst must be in the exact answer"
        assert truth <= found | truth  # sanity
        # Recall: every exact hit is found.
        assert truth <= found

    def test_results_sorted_by_burstiness(self, planted):
        _, index, _ = planted
        hits = index.bursty_events(520.0, 50.0, 40.0)
        values = [hit.burstiness for hit in hits]
        assert values == sorted(values, reverse=True)

    def test_pruning_issues_fewer_queries_than_naive(self, planted):
        universe, index, _ = planted
        index.reset_query_counter()
        index.bursty_events(520.0, 300.0, 40.0)
        assert index.point_queries_issued < universe

    def test_naive_matches_leaf_scan(self, planted):
        universe, index, _ = planted
        tau = 40.0
        naive = index.naive_bursty_events(520.0, 300.0, tau)
        leaf = index.level_sketch(0)
        for hit in naive:
            assert leaf.burstiness(hit.event_id, 520.0, tau) >= 300.0

    def test_point_query_counter(self, planted):
        _, index, _ = planted
        index.reset_query_counter()
        index.point_query(5, 520.0, 40.0)
        assert index.point_queries_issued == 1

    def test_update_validates_event_id(self, planted):
        universe, index, _ = planted
        with pytest.raises(InvalidParameterError):
            index.update(universe, 1_001.0)

    def test_negative_theta_rejected(self, planted):
        _, index, _ = planted
        with pytest.raises(InvalidParameterError):
            index.bursty_events(520.0, -1.0, 40.0)

    def test_level_count(self, planted):
        universe, index, _ = planted
        assert index.n_levels == 7  # 64 leaves -> levels 0..6

    def test_size_accounts_all_levels(self, planted):
        _, index, _ = planted
        total = sum(
            index.level_sketch(level).size_in_bytes()
            for level in range(index.n_levels)
        )
        assert index.size_in_bytes() == total

    def test_additivity_of_parent_estimates(self, planted):
        """b_parent ~ b_left + b_right (exact additivity, sketch noise)."""
        universe, index, exact = planted
        tau, t = 40.0, 520.0
        dec = index.decomposition
        level = 2
        rid = dec.range_id(5, level)
        left, right = dec.children(rid, level)
        b_parent = index.level_sketch(level).burstiness(rid, t, tau)
        b_left = index.level_sketch(level - 1).burstiness(left, t, tau)
        b_right = index.level_sketch(level - 1).burstiness(right, t, tau)
        lo, hi = dec.range_bounds(rid, level)
        truth = sum(
            exact.burstiness(e, t, tau) for e in range(lo, hi + 1)
        )
        assert b_parent == pytest.approx(truth, rel=0.4, abs=100)
        assert b_left + b_right == pytest.approx(truth, rel=0.4, abs=100)

    def test_pbe2_variant_also_detects(self):
        universe = 32
        records = _burst_stream(universe, {9: 400}, seed=5)
        index = BurstyEventIndex.with_pbe2(
            universe, gamma=15.0, width=8, depth=3
        )
        index.extend(records)
        index.finalize()
        hits = index.bursty_events(440.0, 200.0, 40.0)
        assert 9 in {hit.event_id for hit in hits}
