"""Durable store lifecycle: seal/manifest mechanics, resume semantics,
concurrent ingest+query, and the context-manager surface."""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

import repro.core.durable as durable_mod
from repro.baselines.exact import ExactBurstStore
from repro.core.durable import (
    MANIFEST_NAME,
    DurableBurstStore,
    create_durable,
    recover,
)
from repro.core.errors import (
    InvalidParameterError,
    RecoveryError,
    SerializationError,
    StreamOrderError,
)
from repro.core.metrics import InstrumentedStore
from repro.core.monitor import BurstMonitor, MonitoredAnalyzer
from repro.core.serialize import load_store, save_store
from repro.core.store import ExactStore, ShardedBurstStore, create_store


def _stream(n, universe=6):
    ids = (np.arange(n) * 5) % universe
    ts = np.arange(n, dtype=np.float64)
    return ids, ts


class TestLifecycle:
    def test_seal_threshold_rolls_segments(self, tmp_path):
        with create_durable(tmp_path / "s", seal_elements=10) as store:
            ids, ts = _stream(35)
            store.extend_batch(ids, ts)
            assert store.n_segments == 3
            assert store._memtable_elements == 5
            assert store.count == 35
            names = sorted(os.listdir(tmp_path / "s"))
            assert "segment-000002.beds" in names
            assert sum(1 for n in names if n.startswith("wal-")) == 1

    def test_counts_weigh_toward_the_seal_threshold(self, tmp_path):
        with create_durable(tmp_path / "s", seal_elements=10) as store:
            store.extend_batch([1, 2, 3], [0.0, 1.0, 2.0], [4, 4, 4])
            # 4 + 4 crosses at the third record (cumulative 12 >= 10).
            assert store.n_segments == 1
            assert store.count == 12
            assert store._memtable_elements == 0

    def test_explicit_seal_and_empty_seal_noop(self, tmp_path):
        with create_durable(tmp_path / "s", seal_elements=1000) as store:
            store.append(1, 0.0)
            store.seal()
            assert store.n_segments == 1
            store.seal()  # empty memtable: no-op
            assert store.n_segments == 1

    def test_manifest_tracks_segments_and_wal(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=5)
        ids, ts = _stream(12)
        store.extend_batch(ids, ts)
        store.close()
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        assert manifest["kind"] == "durable"
        assert manifest["backend"] == "exact"
        assert manifest["segments"] == [
            "segment-000000.beds",
            "segment-000001.beds",
        ]
        assert manifest["wal_seq"] == 3
        assert manifest["t_end"] == 9.0  # horizon of the sealed records

    def test_closed_store_rejects_writes_but_serves_queries(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=100)
        store.append(1, 0.0)
        value = store.point_query(1, 1.0, 2.0)
        store.close()
        store.close()  # idempotent
        assert store.point_query(1, 1.0, 2.0) == value
        with pytest.raises(InvalidParameterError, match="closed"):
            store.append(1, 2.0)

    def test_stream_order_enforced_across_seals(self, tmp_path):
        with create_durable(tmp_path / "s", seal_elements=2) as store:
            store.extend_batch([1, 2, 3], [1.0, 2.0, 3.0])
            assert store.n_segments == 1  # fresh memtable since then
            with pytest.raises(StreamOrderError):
                store.append(9, 0.5)

    def test_directory_collision_requires_resume(self, tmp_path):
        create_durable(tmp_path / "s", seal_elements=5).close()
        with pytest.raises(InvalidParameterError, match="resume"):
            create_durable(tmp_path / "s", seal_elements=5)
        again = create_durable(
            tmp_path / "s", seal_elements=5, resume=True
        )
        again.close()

    def test_resume_prefers_the_manifest_config(self, tmp_path):
        store = create_durable(
            tmp_path / "s", backend="exact", seal_elements=7
        )
        store.extend_batch(*_stream(10))
        store.close()
        resumed = create_durable(
            tmp_path / "s", backend="cm-pbe-1", seal_elements=999,
            resume=True,
        )
        assert resumed.child_backend == "exact"
        assert resumed.seal_elements == 7
        resumed.close()

    def test_nested_durable_rejected(self):
        with pytest.raises(InvalidParameterError, match="nest"):
            create_store("durable", backend="durable")

    def test_ephemeral_mode_needs_no_directory(self):
        store = create_store("durable", backend="exact", seal_elements=3)
        store.extend_batch(*_stream(10))
        assert store.directory is None
        assert store.n_segments == 3
        assert store.count == 10


class TestRecovery:
    def test_wal_tail_replays_into_the_memtable(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=8)
        ids, ts = _stream(20)
        store.extend_batch(ids, ts)
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.n_segments == 2
        assert recovered._memtable_elements == 4
        assert recovered.count == 20
        assert recovered.t_end == 19.0
        recovered.close()

    def test_recovery_is_idempotent(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=8)
        store.extend_batch(*_stream(21))
        store.close()
        first = recover(tmp_path / "s")
        first.close()
        second = recover(tmp_path / "s")
        panel = [(int(e), float(t)) for e in range(6) for t in range(25)]
        ids = [e for e, _ in panel]
        ts = [t for _, t in panel]
        third = recover(tmp_path / "s")
        np.testing.assert_array_equal(
            second.point_query_batch(ids, ts, 3.0),
            third.point_query_batch(ids, ts, 3.0),
        )
        second.close()
        third.close()

    def test_recovered_answers_match_exact_oracle(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=6)
        ids, ts = _stream(40)
        store.extend_batch(ids, ts)
        store.close()
        oracle = ExactStore()
        oracle.extend_batch(ids, ts)
        recovered = recover(tmp_path / "s")
        panel_ids = np.repeat(np.arange(6), 9)
        panel_ts = np.tile(np.linspace(0.0, 44.0, 9), 6)
        np.testing.assert_array_equal(
            recovered.point_query_batch(panel_ids, panel_ts, 3.0),
            oracle.point_query_batch(panel_ids, panel_ts, 3.0),
        )
        for event in range(6):
            assert recovered.bursty_time_query(
                event, 0.4, 3.0
            ) == oracle.bursty_time_query(event, 0.4, 3.0)
        assert recovered.bursty_event_query(
            20.0, 0.4, 3.0
        ) == oracle.bursty_event_query(20.0, 0.4, 3.0)
        recovered.close()

    def test_recover_without_manifest_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no durable manifest"):
            recover(tmp_path)

    def test_recover_with_malformed_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(RecoveryError, match="unreadable"):
            recover(tmp_path)

    def test_missing_segment_raises_recovery_error(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=4)
        store.extend_batch(*_stream(10))
        store.close()
        os.unlink(tmp_path / "s" / "segment-000000.beds")
        with pytest.raises(RecoveryError, match="missing segment"):
            recover(tmp_path / "s")

    def test_single_store_dir_rejected_by_durable_on_sharded(self, tmp_path):
        create_durable(tmp_path / "s", shards=2, seal_elements=5).close()
        with pytest.raises(RecoveryError, match="sharded-durable"):
            DurableBurstStore(tmp_path / "s", resume=True)

    def test_recovery_after_resumed_ingest(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=8)
        ids, ts = _stream(10)
        store.extend_batch(ids, ts)
        store.close()
        resumed = recover(tmp_path / "s")
        resumed.extend_batch(ids, ts + 10.0)
        resumed.close()
        final = recover(tmp_path / "s")
        assert final.count == 20
        oracle = ExactStore()
        oracle.extend_batch(np.concatenate([ids, ids]),
                            np.concatenate([ts, ts + 10.0]))
        assert final.bursty_event_query(
            12.0, 0.4, 2.0
        ) == oracle.bursty_event_query(12.0, 0.4, 2.0)
        final.close()


class TestShardedDurable:
    def test_composite_layout_and_recovery(self, tmp_path):
        store = create_durable(
            tmp_path / "s", shards=3, seal_elements=5
        )
        assert isinstance(store, ShardedBurstStore)
        ids, ts = _stream(45, universe=11)
        store.extend_batch(ids, ts)
        store.close()
        names = sorted(os.listdir(tmp_path / "s"))
        assert names[0] == MANIFEST_NAME
        assert names[1:] == ["shard-000", "shard-001", "shard-002"]
        recovered = recover(tmp_path / "s")
        assert isinstance(recovered, ShardedBurstStore)
        assert recovered.count == 45
        oracle = ExactStore()
        oracle.extend_batch(ids, ts)
        panel_ids = np.repeat(np.arange(11), 5)
        panel_ts = np.tile(np.linspace(0.0, 50.0, 5), 11)
        np.testing.assert_array_equal(
            recovered.point_query_batch(panel_ids, panel_ts, 4.0),
            oracle.point_query_batch(panel_ids, panel_ts, 4.0),
        )
        assert recovered.bursty_event_query(
            22.0, 0.3, 4.0
        ) == oracle.bursty_event_query(22.0, 0.3, 4.0)
        recovered.close()

    def test_sharded_resume_requires_flag(self, tmp_path):
        create_durable(tmp_path / "s", shards=2, seal_elements=5).close()
        with pytest.raises(InvalidParameterError, match="resume"):
            create_durable(tmp_path / "s", shards=2, seal_elements=5)
        resumed = create_durable(
            tmp_path / "s", shards=2, seal_elements=5, resume=True
        )
        resumed.close()

    def test_wrapper_seal_and_flush_fan_out(self, tmp_path):
        store = create_durable(tmp_path / "s", shards=2, seal_elements=100)
        store.extend_batch(*_stream(10))
        store.flush()
        store.seal()
        assert all(child.n_segments >= 1 for child in store.shards
                   if child._memtable_elements == 0)
        assert store.count == 10
        store.close()


class TestConcurrentIngestAndQuery:
    def test_readers_never_see_torn_state(self, tmp_path):
        """One writer appending, two readers hammering queries.

        Every reader-visible answer must equal the exact oracle's answer
        over SOME acknowledged prefix of the stream — a torn read
        (partially applied batch, half-merged view) could not satisfy
        that for any prefix.  Prefix counts are recovered from the
        store's own count, which only moves under the writer lock.
        """
        ids, ts = _stream(400, universe=5)
        prefix_answers = {}
        oracle = ExactBurstStore()
        boundary = 0
        for n in range(0, 401, 8):  # batch size below
            while boundary < n:
                oracle.update(int(ids[boundary]), float(ts[boundary]))
                boundary += 1
            prefix_answers[n] = {
                event: oracle.burstiness(event, 200.0, 50.0)
                for event in range(5)
            }
        store = create_durable(
            tmp_path / "s", seal_elements=64, fsync="never"
        )
        errors = []
        stop = threading.Event()

        def writer():
            for start in range(0, 400, 8):
                store.extend_batch(
                    ids[start : start + 8], ts[start : start + 8]
                )
            stop.set()

        def reader():
            while not stop.is_set() or not errors:
                seen = store.count
                if seen % 8 != 0:
                    errors.append(f"torn count {seen}")
                    return
                values = {
                    event: store.point_query(event, 200.0, 50.0)
                    for event in range(5)
                }
                again = store.count
                # The view is an immutable snapshot: all five answers
                # must come from one acknowledged prefix in [seen, again].
                candidates = [
                    n for n in prefix_answers if seen <= n <= again
                ]
                if not any(
                    prefix_answers[n] == values for n in candidates
                ):
                    errors.append(
                        f"no prefix in [{seen}, {again}] matches {values}"
                    )
                    return
                if stop.is_set():
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        write_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        write_thread.start()
        write_thread.join()
        for thread in threads:
            thread.join()
        store.close()
        assert not errors, errors[:3]


class TestBackgroundSeal:
    def test_background_segments_match_inline_byte_for_byte(self, tmp_path):
        """Moving the seal off the hot path must not change what lands
        on disk: same stream, same thresholds => identical segments."""
        ids, ts = _stream(60)
        inline = create_durable(
            tmp_path / "inline", seal_elements=8, fsync="never"
        )
        inline.extend_batch(ids, ts)
        inline.close()
        background = create_durable(
            tmp_path / "bg",
            seal_elements=8,
            fsync="never",
            background_seal=True,
        )
        background.extend_batch(ids, ts)
        background.drain_seals()
        background.close()
        inline_segments = sorted(
            name
            for name in os.listdir(tmp_path / "inline")
            if name.startswith("segment-")
        )
        bg_segments = sorted(
            name
            for name in os.listdir(tmp_path / "bg")
            if name.startswith("segment-")
        )
        assert bg_segments == inline_segments
        assert len(bg_segments) == 7  # 60 records through an 8-cap
        for name in bg_segments:
            assert (tmp_path / "bg" / name).read_bytes() == (
                tmp_path / "inline" / name
            ).read_bytes(), name
        first = recover(tmp_path / "inline")
        second = recover(tmp_path / "bg")
        assert first.count == second.count == 60
        panel_ids = np.repeat(np.arange(6), 9)
        panel_ts = np.tile(np.linspace(0.0, 70.0, 9), 6)
        np.testing.assert_array_equal(
            second.point_query_batch(panel_ids, panel_ts, 3.0),
            first.point_query_batch(panel_ids, panel_ts, 3.0),
        )
        first.close()
        second.close()

    def test_backpressure_blocks_and_never_drops(
        self, tmp_path, monkeypatch
    ):
        real_save = durable_mod.save_store

        def slow_save(store):
            time.sleep(0.02)
            return real_save(store)

        monkeypatch.setattr(durable_mod, "save_store", slow_save)
        store = create_durable(
            tmp_path / "s",
            seal_elements=4,
            fsync="never",
            background_seal=True,
            max_unsealed=1,
        )
        waits_before = store._backpressure_waits.value
        seconds_before = store._backpressure_seconds.value
        ids, ts = _stream(48)
        store.extend_batch(ids, ts)  # 12 generations through a 1-deep gate
        assert store._backpressure_waits.value > waits_before
        assert store._backpressure_seconds.value > seconds_before
        assert store.seal_queue_depth <= 1
        assert store.count == 48  # blocked, never dropped
        store.drain_seals()
        assert store.seal_queue_depth == 0
        assert store.seal_lag_elements == 0
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.count == 48
        recovered.close()

    def test_seal_failure_surfaces_and_records_stay_recoverable(
        self, tmp_path, monkeypatch
    ):
        store = create_durable(
            tmp_path / "s",
            seal_elements=4,
            fsync="never",
            background_seal=True,
        )

        def boom(_store):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(durable_mod, "save_store", boom)
        ids, ts = _stream(4)
        store.extend_batch(ids, ts)  # one frozen generation; worker dies
        with pytest.raises(SerializationError, match="background seal"):
            store.drain_seals()
        monkeypatch.undo()
        # The frozen generation is still WAL-backed: close succeeds and
        # recovery replays every acknowledged record.
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.count == 4
        oracle = ExactStore()
        oracle.extend_batch(ids, ts)
        for event in range(6):
            assert recovered.point_query(event, 2.0, 3.0) == (
                oracle.point_query(event, 2.0, 3.0)
            )
        recovered.close()

    def test_drain_without_background_sealing_is_a_noop(self, tmp_path):
        with create_durable(tmp_path / "s", seal_elements=4) as store:
            store.extend_batch(*_stream(10))
            store.drain_seals()
            assert store.seal_queue_depth == 0


class TestSnapshotConsistencyMidBackgroundSeal:
    """Concurrent readers racing the background seal thread must always
    observe a batch-boundary snapshot of the stream — the pre-seal view
    or the post-seal view, never a torn mix — for every durable
    backend, not just the exact one."""

    @pytest.mark.parametrize(
        "backend,cfg",
        [
            ("exact", {}),
            (
                "cm-pbe-1",
                dict(universe_size=5, eta=40, width=8, depth=3, seed=0),
            ),
        ],
        ids=["exact", "cm-pbe-1"],
    )
    def test_readers_see_batch_boundary_prefixes(
        self, tmp_path, backend, cfg
    ):
        ids, ts = _stream(400, universe=5)
        batch = 8
        panel_ids = np.arange(5)
        panel_ts = np.full(5, 200.0)

        def prefix_answers_for(n):
            # An ephemeral durable store with the same seal threshold
            # partitions the prefix into the same generations, so its
            # answers are exact per-prefix oracles even for the sketch
            # backend.
            with create_store(
                "durable", backend=backend, seal_elements=64, **cfg
            ) as oracle:
                if n:
                    oracle.extend_batch(ids[:n], ts[:n])
                return tuple(
                    oracle.point_query_batch(panel_ids, panel_ts, 50.0)
                )

        prefix_answers = {
            n: prefix_answers_for(n) for n in range(0, 401, batch)
        }
        store = create_durable(
            tmp_path / "s",
            backend=backend,
            seal_elements=64,
            fsync="never",
            background_seal=True,
            **cfg,
        )
        errors = []
        stop = threading.Event()

        def writer():
            for start in range(0, 400, batch):
                store.extend_batch(
                    ids[start : start + batch], ts[start : start + batch]
                )
            stop.set()

        def reader():
            while not stop.is_set() and not errors:
                seen = store.count
                if seen % batch != 0:
                    errors.append(f"torn count {seen}")
                    return
                # One batch call = one view fetch = one atomic snapshot.
                values = tuple(
                    store.point_query_batch(panel_ids, panel_ts, 50.0)
                )
                again = store.count
                candidates = [
                    n for n in prefix_answers if seen <= n <= again
                ]
                if not any(
                    prefix_answers[n] == values for n in candidates
                ):
                    errors.append(
                        f"no prefix in [{seen}, {again}] matches {values}"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        write_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        write_thread.start()
        write_thread.join()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        store.drain_seals()
        assert (
            tuple(store.point_query_batch(panel_ids, panel_ts, 50.0))
            == prefix_answers[400]
        )
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.count == 400
        recovered.close()


class TestSerializationAndComposition:
    def test_round_trip_preserves_segments_and_memtable(self, tmp_path):
        store = create_durable(tmp_path / "s", seal_elements=6)
        ids, ts = _stream(20)
        store.extend_batch(ids, ts)
        blob = save_store(store)
        loaded = load_store(blob)
        assert loaded.directory is None
        assert loaded.n_segments == store.n_segments
        assert loaded.count == store.count
        assert save_store(loaded) == blob
        store.close()

    def test_merge_concatenates_time_ranges(self):
        left = create_store("durable", backend="exact", seal_elements=4)
        right = create_store("durable", backend="exact", seal_elements=4)
        ids, ts = _stream(20)
        left.extend_batch(ids[:12], ts[:12])
        right.extend_batch(ids[12:], ts[12:])
        merged = left.merge(right)
        oracle = ExactStore()
        oracle.extend_batch(ids, ts)
        for event in range(6):
            for t in (3.0, 11.0, 19.0):
                assert merged.point_query(event, t, 2.0) == (
                    oracle.point_query(event, t, 2.0)
                )
        # Parts stay independently usable after the merge.
        right.append(0, 30.0)
        assert merged.count == 20

    def test_merge_rejects_mismatched_children(self):
        a = create_store("durable", backend="exact")
        b = create_store("durable", backend="direct", cell="pbe1", eta=60)
        with pytest.raises(InvalidParameterError, match="differ"):
            a.merge(b)

    def test_instrumented_wrapper_delegates_lifecycle(self, tmp_path):
        inner = create_durable(tmp_path / "s", seal_elements=4)
        wrapped = InstrumentedStore(inner)
        with wrapped as store:
            store.append(1, 0.0)
            store.extend_batch([2, 3], [1.0, 2.0])
            store.seal()
            store.flush()
            assert store.n_segments == 1
        with pytest.raises(InvalidParameterError, match="closed"):
            wrapped.append(4, 3.0)
        snapshot = wrapped.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["store_elements_ingested_total"]["value"] == 3.0

    def test_monitored_analyzer_rides_a_durable_store(self, tmp_path):
        monitor = BurstMonitor(tau=2.0, theta=0.5)
        store = create_durable(tmp_path / "s", seal_elements=8)
        analyzer = MonitoredAnalyzer(monitor, store=store)
        for i in range(30):
            analyzer.update(1, float(i))
        assert store.count == 30
        assert store.n_segments >= 3
        # Historical queries and live alerting share one ingest path.
        assert analyzer.historical_burstiness(
            1, 15.0, 2.0
        ) == store.point_query(1, 15.0, 2.0)
        store.close()


class TestContextManagers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: create_store("exact"),
            lambda: create_store("cm-pbe-1", universe_size=8, eta=40,
                                 width=8, depth=3, seed=0),
            lambda: create_store("sharded", shards=2, backend="exact"),
            lambda: create_store("durable", backend="exact"),
            lambda: create_store("instrumented", backend="exact"),
        ],
        ids=["exact", "cm-pbe-1", "sharded", "durable", "instrumented"],
    )
    def test_every_store_is_a_context_manager(self, factory):
        with factory() as store:
            store.update(1, 0.0)
            store.append(1, 1.0)
            store.flush()
            assert store.count == 2
        store.close()  # close after close: still idempotent

    def test_sharded_close_chains_to_durable_children(self, tmp_path):
        store = create_durable(tmp_path / "s", shards=2, seal_elements=5)
        store.extend_batch(*_stream(4))
        store.close()
        for child in store.shards:
            with pytest.raises(InvalidParameterError, match="closed"):
                child.append(1, 99.0)


class TestRecoveryLeakAndLayout:
    """Satellite bugfixes: failing sharded recovery must not leak the
    shards that already opened, and the manifest's shard count is
    validated against the directory layout before any shard opens."""

    def _build(self, path, shards=3):
        store = create_durable(path, shards=shards, seal_elements=5)
        ids, ts = _stream(45, universe=11)
        store.extend_batch(ids, ts)
        store.close()
        return ids, ts

    @pytest.mark.parametrize("parallel", [True, False])
    def test_failing_shard_closes_already_opened_shards(
        self, tmp_path, monkeypatch, parallel
    ):
        self._build(tmp_path / "s")
        # Doctor one shard so its recovery raises after the others
        # (parallel) or after shard-000 (sequential) have opened.
        bad_manifest = tmp_path / "s" / "shard-002" / MANIFEST_NAME
        bad_manifest.write_bytes(b"{this is not json")

        created = []
        real_cls = durable_mod.DurableBurstStore

        class Tracking(real_cls):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                # Only fully-constructed stores can leak; the doctored
                # shard raises inside __init__ and never lands here.
                created.append(self)

        monkeypatch.setattr(durable_mod, "DurableBurstStore", Tracking)
        with pytest.raises(RecoveryError):
            recover(
                tmp_path / "s",
                parallel=parallel,
                background_seal=True,
            )
        opened = [
            child for child in created if hasattr(child, "_closed")
        ]
        assert opened, "no shard opened before the doctored one failed"
        # Every successfully opened shard was closed before the error
        # propagated: no leaked WAL handles, no leaked seal threads.
        assert all(child._closed for child in opened)
        assert not [
            t
            for t in threading.enumerate()
            if t.name.startswith("durable-seal")
        ]

    def test_missing_shard_dir_raises_named_layout_error(self, tmp_path):
        import shutil

        from repro.core.errors import ShardLayoutError

        self._build(tmp_path / "s")
        shutil.rmtree(tmp_path / "s" / "shard-001")
        with pytest.raises(ShardLayoutError, match="missing shard-001"):
            recover(tmp_path / "s")

    def test_extra_shard_dir_raises_named_layout_error(self, tmp_path):
        from repro.core.errors import ShardLayoutError

        self._build(tmp_path / "s")
        (tmp_path / "s" / "shard-003").mkdir()
        with pytest.raises(ShardLayoutError, match="extra shard-003"):
            recover(tmp_path / "s")

    def test_layout_error_is_a_recovery_error(self):
        from repro.core.errors import ShardLayoutError

        assert issubclass(ShardLayoutError, RecoveryError)


class TestStaleSweepVsBackgroundSeal:
    """Satellite bugfix: the stale-file sweep must not reap a segment a
    background seal has written but not yet committed to the manifest."""

    def test_sweep_protects_mid_seal_segment(self, tmp_path, monkeypatch):
        from repro.core.serialize import atomic_write_bytes as real_write

        barrier = threading.Event()
        release = threading.Event()

        def gated(path, data, *, fsync=True):
            written = real_write(path, data, fsync=fsync)
            name = os.path.basename(os.fspath(path))
            if name.startswith("segment-"):
                # Freeze the sealer in the window between "segment file
                # on disk" and "segment committed to the manifest".
                barrier.set()
                release.wait(timeout=10.0)
            return written

        store = create_durable(
            tmp_path / "s",
            seal_elements=8,
            fsync="never",
            background_seal=True,
        )
        try:
            monkeypatch.setattr(
                durable_mod, "atomic_write_bytes", gated
            )
            ids, ts = _stream(16)
            store.extend_batch(ids, ts)
            assert barrier.wait(5.0), "background seal never started"
            on_disk = {
                name
                for name in os.listdir(tmp_path / "s")
                if name.startswith("segment-")
            }
            assert on_disk, "sealer signalled before writing a segment"
            # The uncommitted segment is invisible to the manifest; a
            # sweep racing the seal must still leave it alone.
            store._cleanup_stale_wals()
            still_there = {
                name
                for name in os.listdir(tmp_path / "s")
                if name.startswith("segment-")
            }
            assert on_disk <= still_there
        finally:
            release.set()
        store.drain_seals()
        monkeypatch.undo()
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.count == 16
        recovered.close()
