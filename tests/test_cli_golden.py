"""Golden CLI tests: ingest/query output is frozen against snapshots.

A small deterministic stream lives in ``tests/data/golden_stream.csv``
and the exact stdout of representative ``ingest`` / ``query`` /
``inspect`` invocations is committed under ``tests/golden/``.  The
tests replay those invocations — across *several* ``--batch-size``
values — and demand byte-identical output, so no change to the batched
ingest path (or a future batch-size default bump) can silently alter
what a built sketch answers.

Temp paths are normalized to ``<OUT>`` before comparison.

To regenerate after an intentional behaviour change::

    PYTHONPATH=src python tests/test_cli_golden.py --regenerate
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.cli import main

DATA = Path(__file__).parent / "data" / "golden_stream.csv"
QUERIES = Path(__file__).parent / "data" / "golden_queries.csv"
GOLDEN = Path(__file__).parent / "golden"

#: Every scenario ingests the fixture stream, then queries the built
#: sketch; the printed transcript of all steps is one golden file.
SCENARIOS: dict[str, list[list[str]]] = {
    "pbe1": [
        [
            "ingest", str(DATA), "--out", "<SKETCH>",
            "--method", "cm-pbe-1", "--eta", "24",
            "--buffer-size", "64", "--width", "8", "--depth", "3",
        ],
        [
            "query", "point", "--sketch", "<SKETCH>",
            "--event", "3", "--t", "290.0", "--tau", "60.0",
        ],
        [
            "query", "bursty-times", "--sketch", "<SKETCH>",
            "--event", "3", "--theta", "20.0", "--tau", "60.0",
        ],
        ["inspect", "<SKETCH>"],
    ],
    "pbe2": [
        [
            "ingest", str(DATA), "--out", "<SKETCH>",
            "--method", "cm-pbe-2", "--gamma", "6.0",
            "--width", "8", "--depth", "3",
        ],
        [
            "query", "point", "--sketch", "<SKETCH>",
            "--event", "3", "--t", "290.0", "--tau", "60.0",
        ],
        [
            "query", "bursty-times", "--sketch", "<SKETCH>",
            "--event", "3", "--theta", "20.0", "--tau", "60.0",
        ],
        ["inspect", "<SKETCH>"],
    ],
    "batch": [
        [
            "ingest", str(DATA), "--out", "<SKETCH>",
            "--method", "cm-pbe-1", "--eta", "24",
            "--buffer-size", "64", "--width", "8", "--depth", "3",
        ],
        [
            "query", "point", "--sketch", "<SKETCH>",
            "--batch-file", str(QUERIES), "--tau", "60.0",
        ],
    ],
}

BATCH_SIZES = [1, 7, 8192]


def run_scenario(
    name: str, tmp_dir: Path, capsys, batch_size: int | None
) -> str:
    sketch_path = tmp_dir / f"{name}.sketch"
    transcript: list[str] = []
    for step in SCENARIOS[name]:
        argv = [
            str(sketch_path) if arg == "<SKETCH>" else arg for arg in step
        ]
        if argv[0] == "ingest" and batch_size is not None:
            argv += ["--batch-size", str(batch_size)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        transcript.append(out.replace(str(sketch_path), "<OUT>"))
    return "".join(transcript)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_cli_output_matches_golden(name, batch_size, tmp_path, capsys):
    golden = (GOLDEN / f"{name}.txt").read_text()
    assert run_scenario(name, tmp_path, capsys, batch_size) == golden


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_build_alias_matches_golden(name, tmp_path, capsys):
    """The legacy ``build`` spelling goes through the same ingest path."""
    golden = (GOLDEN / f"{name}.txt").read_text()
    SCENARIOS[name][0][0] = "build"
    try:
        transcript = run_scenario(name, tmp_path, capsys, None)
    finally:
        SCENARIOS[name][0][0] = "ingest"
    assert transcript == golden


def _regenerate() -> None:
    import contextlib
    import io
    import tempfile
    import types

    class _Drain:
        """Minimal stand-in for pytest's capsys over one StringIO."""

        def __init__(self, buffer: io.StringIO) -> None:
            self._buffer = buffer
            self._position = 0

        def readouterr(self):
            value = self._buffer.getvalue()
            out = value[self._position:]
            self._position = len(value)
            return types.SimpleNamespace(out=out)

    GOLDEN.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        for name in SCENARIOS:
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                transcript = run_scenario(
                    name, Path(tmp), _Drain(buffer), batch_size=None
                )
            (GOLDEN / f"{name}.txt").write_text(transcript)
            print(f"wrote {GOLDEN / f'{name}.txt'}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
