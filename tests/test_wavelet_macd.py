"""Tests for the Haar-wavelet and MACD related-work baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.macd import MacdTrendScorer
from repro.baselines.wavelet import (
    HaarBurstDetector,
    haar_details,
)
from repro.core.errors import InvalidParameterError


def bursty_series() -> list[float]:
    """Steady drip, then a dense surge around t in [600, 700)."""
    rng = np.random.default_rng(5)
    quiet = rng.uniform(0, 600, size=60)
    surge = rng.uniform(600, 700, size=400)
    tail = rng.uniform(700, 1_024, size=40)
    return np.sort(np.concatenate([quiet, surge, tail])).tolist()


class TestHaarDetails:
    def test_length_per_level(self):
        details = haar_details(np.ones(16))
        assert [d.size for d in details] == [8, 4, 2, 1]

    def test_constant_series_has_zero_details(self):
        for level in haar_details(np.full(32, 7.0)):
            assert np.allclose(level, 0.0)

    def test_step_series_detail_location(self):
        counts = np.zeros(8)
        counts[4:] = 10.0
        details = haar_details(counts)
        # The level-2 coefficient spans the step: it must dominate.
        assert abs(details[2][0]) > max(
            np.abs(details[0]).max(), np.abs(details[1]).max()
        )

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidParameterError):
            haar_details(np.ones(12))
        with pytest.raises(InvalidParameterError):
            haar_details(np.empty(0))

    def test_energy_preserved(self):
        """Haar transform is orthonormal: energy is conserved."""
        rng = np.random.default_rng(0)
        counts = rng.uniform(0, 10, size=64)
        details = haar_details(counts)
        approx_energy = np.sum(counts) ** 2 / counts.size
        detail_energy = sum(float(np.sum(d**2)) for d in details)
        assert detail_energy + approx_energy == pytest.approx(
            float(np.sum(counts**2))
        )


class TestHaarBurstDetector:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HaarBurstDetector(bin_width=0.0)
        with pytest.raises(InvalidParameterError):
            HaarBurstDetector(bin_width=1.0, z_threshold=0.0)

    def test_empty_stream(self):
        assert HaarBurstDetector(bin_width=8.0).detect([]) == []

    def test_detects_the_surge(self):
        detector = HaarBurstDetector(bin_width=8.0, z_threshold=3.0)
        bursts = detector.detect(bursty_series(), t_start=0.0, t_end=1_024.0)
        assert bursts, "the surge must be flagged"
        # Some flagged window overlaps the surge onset.
        assert any(b.start <= 700 and b.end >= 600 for b in bursts)

    def test_quiet_stream_mostly_silent(self):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 1_024, size=500)).tolist()
        detector = HaarBurstDetector(bin_width=8.0, z_threshold=4.0)
        bursts = detector.detect(times, t_start=0.0, t_end=1_024.0)
        assert len(bursts) <= 5

    def test_bin_counts_power_of_two(self):
        detector = HaarBurstDetector(bin_width=10.0)
        counts = detector.bin_counts([5.0, 15.0, 15.5], 0.0, 100.0)
        assert counts.size == 16
        assert counts[0] == 1 and counts[1] == 2


class TestMacd:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MacdTrendScorer(bin_width=0.0)
        with pytest.raises(InvalidParameterError):
            MacdTrendScorer(bin_width=1.0, fast=26, slow=12)
        with pytest.raises(InvalidParameterError):
            MacdTrendScorer(bin_width=1.0, signal=0)

    def test_empty_stream(self):
        assert MacdTrendScorer(bin_width=8.0).score_series([]) == []

    def test_constant_rate_macd_near_zero(self):
        times = [float(t) for t in range(0, 1_000)]
        scorer = MacdTrendScorer(bin_width=10.0)
        points = scorer.score_series(times)
        # After warm-up the fast and slow EWMAs agree on a flat series.
        settled = points[40:]
        assert max(abs(p.macd) for p in settled) < 0.5

    def test_surge_turns_macd_positive(self):
        scorer = MacdTrendScorer(bin_width=8.0)
        points = scorer.score_series(bursty_series())
        during = [p for p in points if 600 <= p.t <= 720]
        assert max(p.macd for p in during) > 1.0

    def test_trending_interval_covers_surge(self):
        scorer = MacdTrendScorer(bin_width=8.0)
        intervals = scorer.trending_intervals(bursty_series())
        assert intervals
        assert any(
            start <= 700 and end >= 600 for start, end in intervals
        )

    def test_histogram_property(self):
        scorer = MacdTrendScorer(bin_width=8.0)
        points = scorer.score_series(bursty_series())
        for point in points:
            assert point.histogram == point.macd - point.signal

    def test_agrees_with_acceleration_definition(self):
        """MACD momentum and PBE burstiness flag the same surge."""
        from repro.streams.frequency import StaircaseCurve

        times = bursty_series()
        curve = StaircaseCurve.from_timestamps(times)
        tau = 64.0
        grid = np.arange(2 * tau, 1_024.0, 16.0)
        values = [curve.burstiness(t, tau) for t in grid]
        acceleration_peak = float(grid[int(np.argmax(values))])
        intervals = MacdTrendScorer(bin_width=8.0).trending_intervals(times)
        assert any(
            start - tau <= acceleration_peak <= end + tau
            for start, end in intervals
        )
