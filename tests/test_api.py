"""Public API surface tests: everything advertised is importable and the
documented entry points behave as the README shows."""

from __future__ import annotations

import pytest


class TestTopLevelExports:
    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_subpackage_exports_resolve(self):
        import repro.baselines
        import repro.eval
        import repro.sketch
        import repro.streams
        import repro.text
        import repro.workloads

        for module in (
            repro.baselines,
            repro.eval,
            repro.sketch,
            repro.streams,
            repro.text,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestReadmeQuickstart:
    def test_readme_snippet_runs(self):
        from repro import HistoricalBurstAnalyzer
        from repro.workloads import DAY, make_olympicrio

        stream = make_olympicrio(n_events=16, total_mentions=3_000)
        analyzer = HistoricalBurstAnalyzer(
            "cm-pbe-1", universe_size=16, eta=50, width=4, depth=3
        )
        analyzer.ingest(stream)
        analyzer.finalize()
        value = analyzer.point_query(0, t=29 * DAY, tau=DAY)
        assert isinstance(value, float)
        intervals = analyzer.bursty_times(0, theta=1e9, tau=DAY)
        assert intervals == []
        hits = analyzer.bursty_events(t=29 * DAY, theta=1e9, tau=DAY)
        assert hits == []

    def test_error_hierarchy(self):
        from repro import (
            EmptySketchError,
            InvalidParameterError,
            ReproError,
            StreamOrderError,
        )

        assert issubclass(EmptySketchError, ReproError)
        assert issubclass(StreamOrderError, ReproError)
        assert issubclass(InvalidParameterError, ReproError)
        assert issubclass(InvalidParameterError, ValueError)

    def test_docstrings_everywhere(self):
        """Every public callable in the top-level API is documented."""
        import repro

        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
