"""Numba kernel parity gate: compiled paths must be bit-identical.

The numba kernels (``pip install .[numba]`` + ``use_numba=True`` or
``REPRO_NUMBA=1``) promise to change throughput and never an answer.
This module is the gate on that promise: every compiled surface —
staircase selection, strip clipping, whole-sketch ingestion — is checked
for exact equality against both the numpy path and a scalar oracle.

The whole module skips (with a visible reason) when numba is not
installed; the dedicated ``numba-parity`` CI job installs the extra so
the skip can never silently rot into zero coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accel import numba_available, resolve_use_numba

if not numba_available():
    pytest.skip(
        "numba not installed (optional extra `.[numba]`); parity gate "
        "runs in the numba-parity CI job",
        allow_module_level=True,
    )

from repro.core.pbe1 import (  # noqa: E402
    PBE1,
    approximate_staircase,
    approximate_staircase_cht,
)
from repro.core.pbe2 import PBE2  # noqa: E402
from repro.core.serialize import dump_pbe1, dump_pbe2  # noqa: E402
from repro.sketch.geometry import (  # noqa: E402
    _clip_strip_kernel,
    _numba_clip_kernel,
)


def _staircase_case(seed: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    xs = np.sort(rng.uniform(0.0, 500.0, size=n))
    xs = np.unique(xs.round(1))
    ys = np.arange(1.0, xs.size + 1.0)
    return xs, ys


def test_resolver_honours_kwarg_when_numba_present():
    assert resolve_use_numba(True) is True
    assert resolve_use_numba(False) is False


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("eta", [4, 9, 25])
def test_staircase_numba_matches_numpy_and_oracle(seed, eta):
    xs, ys = _staircase_case(seed, n=400)
    compiled = approximate_staircase(xs, ys, eta, use_numba=True)
    numpy_path = approximate_staircase(xs, ys, eta, use_numba=False)
    oracle = approximate_staircase_cht(xs, ys, eta)

    assert list(compiled.selected) == list(numpy_path.selected)
    assert compiled.error == numpy_path.error
    assert list(compiled.selected) == list(oracle.selected)
    assert compiled.error == oracle.error


@pytest.mark.parametrize("seed", [0, 5, 11])
def test_clip_kernel_numba_matches_interpreted(seed):
    rng = np.random.default_rng(seed)
    # A convex polygon (CCW hull of random points) and a few strips.
    angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=12))
    vx = np.cos(angles) * rng.uniform(1.0, 5.0)
    vy = np.sin(angles) * rng.uniform(1.0, 5.0)
    interpreted = _clip_strip_kernel
    compiled = _numba_clip_kernel()
    for t, lo, hi in [
        (0.5, -1.0, 1.0),
        (2.0, 0.0, 0.5),
        (-1.0, -3.0, 3.0),
        (0.0, -0.1, 0.1),
    ]:
        ix, iy = interpreted(vx.copy(), vy.copy(), t, lo, hi)
        cx, cy = compiled(vx.copy(), vy.copy(), t, lo, hi)
        assert list(ix) == list(cx)
        assert list(iy) == list(cy)


def _bursty_timestamps(seed: int, n: int = 3000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    quiet = rng.uniform(0.0, 1_000.0, size=n // 3)
    burst = rng.uniform(1_000.0, 1_080.0, size=n // 2)
    tail = rng.uniform(1_080.0, 2_000.0, size=n - n // 3 - n // 2)
    return np.sort(np.concatenate([quiet, burst, tail]).round(1))


@pytest.mark.parametrize("seed", [0, 1])
def test_pbe1_ingest_numba_matches_numpy(seed):
    ts = _bursty_timestamps(seed)
    compiled = PBE1(eta=30, buffer_size=256, use_numba=True)
    plain = PBE1(eta=30, buffer_size=256, use_numba=False)
    compiled.extend_batch(ts)
    plain.extend_batch(ts)
    compiled.flush()
    plain.flush()
    # Serialized corners are the sketch's full observable state: byte
    # equality is bit-identity on every corner and count.
    assert dump_pbe1(compiled) == dump_pbe1(plain)
    assert compiled.construction_error == plain.construction_error


@pytest.mark.parametrize("seed", [0, 1])
def test_pbe2_ingest_numba_matches_numpy(seed):
    ts = _bursty_timestamps(seed)
    compiled = PBE2(gamma=10.0, unit=1.0, use_numba=True)
    plain = PBE2(gamma=10.0, unit=1.0, use_numba=False)
    compiled.extend_batch(ts)
    plain.extend_batch(ts)
    compiled.finalize()
    plain.finalize()
    assert dump_pbe2(compiled) == dump_pbe2(plain)


def test_env_flag_routes_to_compiled_path(monkeypatch):
    monkeypatch.setenv("REPRO_NUMBA", "1")
    assert resolve_use_numba(None) is True
    sketch = PBE2(gamma=10.0, unit=1.0)
    assert sketch._use_compiled is True
    monkeypatch.setenv("REPRO_NUMBA", "0")
    assert resolve_use_numba(None) is False
