"""Persist sketches across process lifetimes; build them in parallel.

Two production concerns the paper's system would face:

1. a sketch must outlive the ingest process — dump it, reload it later,
   keep answering historical queries (and even keep ingesting),
2. construction over a long archive should parallelize — the paper notes
   (§III-A) that mutually exclusive time ranges can be processed
   independently; ``build_pbe1_chunked`` does exactly that and merges.

Run:  python examples/persist_and_resume.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import PBE1
from repro.core.parallel import build_pbe1_chunked
from repro.core.serialize import dump_pbe1, load_pbe1
from repro.workloads import DAY, make_soccer_stream


def main() -> None:
    stream = make_soccer_stream(total_mentions=40_000)
    timestamps = list(stream.timestamps)
    split = int(len(timestamps) * 0.8)

    # --- Day job: ingest the first 80%, persist, exit. --------------
    sketch = PBE1(eta=150, buffer_size=1500)
    sketch.extend(timestamps[:split])
    payload = dump_pbe1(sketch)
    path = Path(tempfile.gettempdir()) / "soccer.pbe1"
    path.write_bytes(payload)
    print(f"Persisted {sketch.count} mentions as {len(payload)} bytes "
          f"-> {path}")

    # --- Next day: reload, keep ingesting, query history. ------------
    resumed = load_pbe1(path.read_bytes())
    resumed.extend(timestamps[split:])
    resumed.flush()
    print(f"Resumed sketch now covers {resumed.count} mentions")
    for day in (10, 20, 29):
        print(f"  b(day {day}, tau=1d) = "
              f"{resumed.burstiness(day * DAY, DAY):8.1f}")

    # --- Parallel construction over disjoint time chunks. ------------
    started = time.perf_counter()
    serial = PBE1(eta=150, buffer_size=1500)
    serial.extend(timestamps)
    serial.flush()
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    chunked = build_pbe1_chunked(
        timestamps, eta=150, buffer_size=1500, n_chunks=4, n_workers=4
    )
    chunked_s = time.perf_counter() - started
    import os

    cores = os.cpu_count() or 1
    print(f"\nserial build:  {serial_s:6.2f} s")
    print(f"4-way chunked: {chunked_s:6.2f} s on {cores} core(s) "
          "(speedup needs multiple cores; answers agree either way: "
          f"b(day 29) = {chunked.burstiness(29 * DAY, DAY):.1f} vs "
          f"{serial.burstiness(29 * DAY, DAY):.1f})")
    path.unlink()


if __name__ == "__main__":
    main()
