"""The full paper pipeline, end to end: tweets -> h -> sketches -> queries.

Synthesizes raw text messages (the information stream ``M`` of §II-A),
maps them to event ids with a hashtag-based ``h``, feeds the resulting
event stream *online* into a CM-PBE-2 (no buffering — every element is
folded into the sketch the moment it arrives), then answers historical
queries about events whose raw text is long gone.

Run:  python examples/streaming_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import CMPBE
from repro.text import HashtagEventMapper, SyntheticTweetSource

TOPICS = ["weather", "earthquake", "election", "soccer"]
HORIZON = 5_000


def tweet_firehose(rng: np.random.Generator):
    """Yield messages: steady weather chatter, an earthquake surge at
    t=3000, slow-ramping election talk, periodic soccer spikes."""
    source = SyntheticTweetSource(
        topics=TOPICS, seed=1, multi_topic_probability=0.05
    )
    for t in range(HORIZON):
        if rng.uniform() < 0.25:  # weather: stable
            yield source.message(0, float(t))
        if t >= 3_000 and rng.uniform() < 4 * np.exp(-(t - 3_000) / 300):
            yield source.message(1, float(t))  # earthquake outbreak
        if rng.uniform() < 0.4 * t / HORIZON:  # election: slow ramp
            yield source.message(2, float(t))
        if (t // 500) % 2 == 1 and rng.uniform() < 0.3:  # soccer matches
            yield source.message(3, float(t))


def main() -> None:
    rng = np.random.default_rng(0)
    mapper = HashtagEventMapper(
        vocabulary={topic: i for i, topic in enumerate(TOPICS)}
    )
    sketch = CMPBE.with_pbe2(gamma=5.0, width=4, depth=3)

    n_messages = 0
    for message in tweet_firehose(rng):
        for event_id in mapper.map(message):
            sketch.update(event_id, message.timestamp)
        n_messages += 1
    sketch.finalize()
    print(f"Processed {n_messages} messages online; "
          f"sketch is {sketch.size_in_bytes() / 1024:.1f} KB "
          f"(the raw text would be ~{n_messages * 60 / 1024:.0f} KB).\n")

    tau = 250.0
    print(f"Historical burstiness (tau={tau:.0f}):")
    print(f"{'t':>6}  " + "".join(f"{topic:>12}" for topic in TOPICS))
    for t in range(500, HORIZON + 1, 500):
        values = [
            sketch.burstiness(event_id, float(t), tau)
            for event_id in range(len(TOPICS))
        ]
        print(f"{t:>6}  " + "".join(f"{value:12.0f}" for value in values))

    quake = sketch.burstiness(1, 3_200.0, tau)
    weather = sketch.burstiness(0, 3_200.0, tau)
    print(f"\nAt t=3200 the earthquake's burstiness ({quake:.0f}) dwarfs "
          f"weather's ({weather:.0f}),")
    print("even though weather has far more total mentions — burst is "
          "acceleration, not frequency (paper §I).")


if __name__ == "__main__":
    main()
