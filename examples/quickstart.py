"""Quickstart: historical burst queries on a mixed event stream.

Builds a synthetic Twitter-like stream, ingests it into a CM-PBE-1
analyzer, and runs all three query types of the paper — point, bursty
time, and bursty event — comparing against the exact baseline.

Run:  python examples/quickstart.py  [--mentions 50000]
"""

from __future__ import annotations

import argparse

from repro import HistoricalBurstAnalyzer
from repro.eval.tables import format_table
from repro.workloads import DAY, make_olympicrio


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mentions", type=int, default=50_000)
    parser.add_argument("--events", type=int, default=64)
    args = parser.parse_args()

    print(f"Generating olympicrio-like stream "
          f"({args.events} events, ~{args.mentions} mentions)...")
    stream = make_olympicrio(
        n_events=args.events, total_mentions=args.mentions
    )
    t_start, t_end = stream.span
    print(f"  {len(stream)} mentions over {(t_end - t_start) / DAY:.0f} days")

    exact = HistoricalBurstAnalyzer("exact")
    sketch = HistoricalBurstAnalyzer(
        "cm-pbe-1", universe_size=args.events, eta=100, buffer_size=500,
        width=6, depth=3,
    )
    exact.ingest(stream)
    sketch.ingest(stream)
    sketch.finalize()
    print(f"  exact store: {exact.size_in_bytes() / 1024:.0f} KB, "
          f"sketch (all index levels): "
          f"{sketch.size_in_bytes() / 1024:.0f} KB")
    print("  (the sketch's advantage grows with stream volume: its size "
          "tracks the curve\n   complexity, not the mention count — see "
          "examples/olympics_history.py)\n")

    tau = DAY
    soccer_id = 0  # event 0 carries the soccer profile (final ~day 29)

    # 1. POINT QUERY: was soccer bursty the day of the final?
    t_final = 29 * DAY
    print("POINT QUERY  q(soccer, day 29, tau=1 day)")
    print(f"  exact  b(t) = {exact.point_query(soccer_id, t_final, tau):.0f}")
    print(f"  sketch b(t) = {sketch.point_query(soccer_id, t_final, tau):.0f}\n")

    # 2. BURSTY TIME QUERY: when was soccer bursty at all?
    theta = 0.3 * exact.point_query(soccer_id, t_final, tau)
    intervals = sketch.bursty_times(
        soccer_id, theta, tau, merge_gap=0.05 * DAY
    )
    print(f"BURSTY TIME QUERY  q(soccer, theta={theta:.0f}, tau=1 day)")
    for start, end in intervals[:8]:
        print(f"  bursty from day {start / DAY:6.2f} to day {end / DAY:6.2f}")
    print()

    # 3. BURSTY EVENT QUERY: what was bursty on the day of the final?
    hits = sketch.bursty_events(t_final, theta, tau)
    truth = {h.event_id for h in exact.bursty_events(t_final, theta, tau)}
    rows = [
        {
            "event_id": hit.event_id,
            "estimated_b": hit.burstiness,
            "in_exact_answer": hit.event_id in truth,
        }
        for hit in hits[:10]
    ]
    print(format_table(
        rows, title=f"BURSTY EVENT QUERY  q(day 29, theta={theta:.0f})"
    ))


if __name__ == "__main__":
    main()
