"""Travel back in time through the Rio 2016 games (paper §I's motivation).

Reproduces the paper's headline use case: after the stream is gone, a few
kilobytes of PBE sketch still answer "was soccer bursty in week w?" for
any point in history.  Compares PBE-1 and PBE-2 on the soccer and swimming
sub-streams, printing a per-day burstiness timeline from each sketch next
to the ground truth.

Run:  python examples/olympics_history.py  [--mentions 80000]
"""

from __future__ import annotations

import argparse

from repro import PBE1, PBE2, StaircaseCurve
from repro.eval.tables import format_table
from repro.workloads import DAY, make_soccer_stream, make_swimming_stream


def sketch_timeline(name, timestamps, eta, gamma):
    curve = StaircaseCurve.from_timestamps(timestamps)
    pbe1 = PBE1(eta=eta, buffer_size=1500)
    pbe1.extend(timestamps)
    pbe1.flush()
    pbe2 = PBE2(gamma=gamma)
    pbe2.extend(timestamps)
    pbe2.finalize()

    print(f"\n=== {name} ===")
    print(f"  exact curve: {curve.size_in_bytes() / 1024:7.1f} KB "
          f"({curve.n_corners} corners)")
    print(f"  PBE-1:       {pbe1.size_in_bytes() / 1024:7.1f} KB "
          f"(eta={eta})")
    print(f"  PBE-2:       {pbe2.size_in_bytes() / 1024:7.1f} KB "
          f"(gamma={gamma})")

    rows = []
    for day in range(2, 31):
        t = day * DAY
        rows.append(
            {
                "day": day,
                "exact_b": curve.burstiness(t, DAY),
                "pbe1_b": pbe1.burstiness(t, DAY),
                "pbe2_b": pbe2.burstiness(t, DAY),
            }
        )
    print(format_table(rows, title=f"{name}: burstiness timeline (tau=1d)"))

    # The "which week was bursty?" question from the paper's intro.
    peak = max(rows, key=lambda row: row["exact_b"])
    answer = max(rows, key=lambda row: row["pbe1_b"])
    print(f"  ground truth peak burst: day {peak['day']}")
    print(f"  PBE-1's answer:          day {answer['day']}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mentions", type=int, default=80_000)
    parser.add_argument("--eta", type=int, default=150)
    parser.add_argument("--gamma", type=float, default=25.0)
    args = parser.parse_args()

    soccer = make_soccer_stream(total_mentions=args.mentions)
    swimming = make_swimming_stream(total_mentions=args.mentions)
    sketch_timeline("soccer", list(soccer.timestamps), args.eta, args.gamma)
    sketch_timeline(
        "swimming", list(swimming.timestamps), args.eta, args.gamma
    )


if __name__ == "__main__":
    main()
