"""Election-2016-style bursty event timeline (paper Fig. 13 / estorm.org).

Builds a uspolitics-like stream with party-labelled events, indexes it
with the dyadic CM-PBE hierarchy, then walks the timeline asking the
bursty EVENT query at every step — printing an ASCII chart of aggregate
democrat vs republican burstiness, the reproduction of the paper's
Figure 13 web demo.

Run:  python examples/politics_timeline.py  [--mentions 60000]
"""

from __future__ import annotations

import argparse

from repro import BurstyEventIndex
from repro.eval.ascii import horizontal_bar
from repro.eval.harness import timeline_study
from repro.workloads import DAY, make_uspolitics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mentions", type=int, default=60_000)
    parser.add_argument("--events", type=int, default=128)
    parser.add_argument("--step-days", type=float, default=5.0)
    args = parser.parse_args()

    print(f"Generating uspolitics-like stream ({args.events} events)...")
    dataset = make_uspolitics(
        n_events=args.events, total_mentions=args.mentions
    )
    print(f"  {len(dataset.stream)} mentions over ~5 months")

    index = BurstyEventIndex.with_pbe1(
        args.events, eta=100, width=6, depth=3, buffer_size=500
    )
    index.extend(dataset.stream)
    index.finalize()
    print(f"  index size: {index.size_in_bytes() / (1024 * 1024):.2f} MB, "
          f"{index.n_levels} levels\n")

    rows = timeline_study(
        dataset, index, tau=DAY, step=args.step_days * DAY
    )
    scale = max(
        max(row["democrat"], row["republican"]) for row in rows
    ) or 1.0
    print("day   democrat                        republican")
    for row in rows:
        dem = horizontal_bar(row["democrat"], scale)
        rep = horizontal_bar(row["republican"], scale)
        print(f"{row['day']:5.0f} {dem:<30}  {rep:<30} "
              f"({row['n_bursty']} bursty)")

    busiest = max(rows, key=lambda row: row["n_bursty"])
    print(f"\nBusiest step: day {busiest['day']:.0f} with "
          f"{busiest['n_bursty']} bursty events "
          f"(top event id {busiest['top_event']})")


if __name__ == "__main__":
    main()
