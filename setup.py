"""Shim so legacy editable installs work where the ``wheel`` package is
unavailable (``pip install -e . --no-build-isolation``)."""

from setuptools import setup

setup()
