"""Ablations A1-A3 (DESIGN.md): combiner choice, pruning effectiveness,
and the convex-hull-trick DP speedup.
"""

from __future__ import annotations

import numpy as np
from conftest import POLITICS_EVENTS, report

from repro.core.pbe1 import (
    approximate_staircase,
    approximate_staircase_bruteforce,
)
from repro.eval.harness import combiner_ablation, pruning_ablation
from repro.eval.tables import format_table


def test_a1_combiner_median_vs_min(benchmark, uspolitics_dataset):
    """A1: the paper's median combiner vs the classic CM min combiner.

    The paper argues the median because per-cell PBEs underestimate
    while collisions overestimate (§IV).  Measured outcome at our scale:
    min wins (collision noise dominates the approximation slack) — see
    EXPERIMENTS.md; the bench records both so the trade-off is visible.
    """
    rows = benchmark.pedantic(
        combiner_ablation,
        args=(uspolitics_dataset.stream,),
        kwargs={"eta": 60, "width": 6, "depth": 3, "n_queries": 100},
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_a1_combiner",
        format_table(rows, title="A1: CM-PBE-1 combiner (uspolitics-like)"),
    )
    assert {row["combiner"] for row in rows} == {"median", "min"}


def test_a2_pruning_effectiveness(benchmark, olympicrio_stream):
    """A2: the dyadic descent issues far fewer point queries than the
    naive one-per-event scan when few events are bursty (§V)."""
    universe = 128
    rows = benchmark.pedantic(
        pruning_ablation,
        args=(olympicrio_stream, universe),
        kwargs={"eta": 60, "width": 6, "depth": 3, "n_times": 5},
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_a2_pruning",
        format_table(
            rows, title=f"A2: pruned vs naive point queries (K={universe})"
        ),
    )
    assert rows
    mean_pruned = float(np.mean([row["queries_pruned"] for row in rows]))
    assert mean_pruned < universe


def test_a3_hull_trick_speedup(benchmark):
    """A3: the O(eta n) hull-trick DP vs the O(eta n^2) textbook DP."""
    import time

    rng = np.random.default_rng(0)
    n, eta = 600, 40
    xs = np.cumsum(rng.integers(1, 9, size=n)).astype(float)
    ys = np.cumsum(rng.integers(1, 6, size=n)).astype(float)

    def fast():
        return approximate_staircase(xs, ys, eta)

    result_fast = benchmark.pedantic(fast, rounds=1, iterations=1)

    started = time.perf_counter()
    result_slow = approximate_staircase_bruteforce(xs, ys, eta)
    slow_seconds = time.perf_counter() - started
    started = time.perf_counter()
    approximate_staircase(xs, ys, eta)
    fast_seconds = time.perf_counter() - started

    rows = [
        {"dp": "hull-trick O(eta n)", "seconds": fast_seconds,
         "error": result_fast.error},
        {"dp": "bruteforce O(eta n^2)", "seconds": slow_seconds,
         "error": result_slow.error},
    ]
    report(
        "ablation_a3_dp",
        format_table(rows, title=f"A3: DP variants (n={n}, eta={eta})"),
    )
    assert result_fast.error == (
        result_slow.error
    ) or abs(result_fast.error - result_slow.error) < 1e-6
    assert fast_seconds < slow_seconds
