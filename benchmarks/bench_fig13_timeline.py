"""Fig. 13 — bursty events from uspolitics over the election timeline,
aggregated by party (the paper's estorm.org demo).

Expected shape (paper): intermittent spikes of burstiness for both
categories across the months, with detected bursts aligning with the
planted ground-truth spike onsets.
"""

from __future__ import annotations

from conftest import POLITICS_EVENTS, report

from repro.core.dyadic import BurstyEventIndex
from repro.eval.harness import timeline_study
from repro.eval.tables import format_table
from repro.workloads.profiles import DAY


def test_fig13_timeline(benchmark, uspolitics_dataset):
    dataset = uspolitics_dataset
    index = BurstyEventIndex.with_pbe1(
        POLITICS_EVENTS, eta=100, width=6, depth=3, buffer_size=1500
    )
    index.extend(dataset.stream)
    index.finalize()

    rows = benchmark.pedantic(
        timeline_study,
        args=(dataset, index),
        kwargs={"tau": DAY, "step": 2 * DAY, "theta": 15.0},
        rounds=1,
        iterations=1,
    )
    report(
        "fig13_timeline",
        format_table(
            rows,
            title=(
                "Fig 13: bursty-event timeline by party "
                f"(K={POLITICS_EVENTS}, tau=1d, step=2d, theta=15)"
            ),
        ),
    )

    # Bursts appear on the timeline (at least one party lights up; with
    # few detections at this scale the split between parties is chance).
    total = max(
        row["democrat"] + row["republican"] for row in rows
    )
    assert total > 0
    # The timeline is spiky/intermittent: some steps loud, most quiet.
    bursty_steps = [row for row in rows if row["n_bursty"] > 0]
    assert 0 < len(bursty_steps) < 0.8 * len(rows)
