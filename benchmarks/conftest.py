"""Shared fixtures for the benchmark suite.

Workload sizes here are the knobs that trade fidelity for wall-clock time;
they default to laptop scales that finish the whole suite in minutes while
preserving every shape the paper reports.  Results are printed AND written
to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads.olympics import (
    make_olympicrio,
    make_soccer_stream,
    make_swimming_stream,
)
from repro.workloads.politics import make_uspolitics

RESULTS_DIR = Path(__file__).parent / "results"

#: Single-event stream volume (paper: 1,000,000 after normalization).
SINGLE_STREAM_MENTIONS = 20_000
#: Mixed-stream volume (paper: ~5,000,000).
MIXED_STREAM_MENTIONS = 30_000
#: Mixed-stream event count (paper: 864 / 1,689).
OLYMPICS_EVENTS = 128
POLITICS_EVENTS = 192


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_sessionfinish(session, exitstatus) -> None:
    """Stitch all persisted tables into benchmarks/results/REPORT.md."""
    from repro.eval.reporting import write_report

    if RESULTS_DIR.is_dir() and any(RESULTS_DIR.glob("*.txt")):
        write_report(RESULTS_DIR)


@pytest.fixture(scope="session")
def soccer_timestamps() -> list[float]:
    return list(
        make_soccer_stream(total_mentions=SINGLE_STREAM_MENTIONS).timestamps
    )


@pytest.fixture(scope="session")
def swimming_timestamps() -> list[float]:
    return list(
        make_swimming_stream(
            total_mentions=SINGLE_STREAM_MENTIONS
        ).timestamps
    )


@pytest.fixture(scope="session")
def olympicrio_stream():
    return make_olympicrio(
        n_events=OLYMPICS_EVENTS, total_mentions=MIXED_STREAM_MENTIONS
    )


@pytest.fixture(scope="session")
def uspolitics_dataset():
    return make_uspolitics(
        n_events=POLITICS_EVENTS, total_mentions=MIXED_STREAM_MENTIONS
    )
