"""Segment-compaction benchmark (BENCH_compaction.json).

The background compactor exists to stop a long-running ingest from
degrading: every sealed segment adds one more envelope to the query
fold and one more file to ``recover()``.  This suite measures exactly
that claim, before and after a full merge-down of a many-segment
store:

* **query latency vs segment count** — best-of-K wall time for a
  point-query panel and a handful of bursty-event queries over the
  fragmented store, then again after ``store.compact()``;
* **recovery time vs segment count** — wall time of
  :func:`repro.core.durable.recover` over both layouts;
* **answer identity** — the compacted store must answer the panel
  bit-identically; a benchmark that got faster by changing answers is
  a bug, not a win.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_compaction.py [--smoke] [--check]

``--smoke`` shrinks the workload for a CI run; ``--check`` exits
nonzero when compaction misses its segment-count contract
(``<= ceil(before / fanin)``), changes any answer, or leaves the
compacted store dramatically slower than the fragmented one.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.durable import create_durable, recover
from repro.core.metrics import global_registry

RESULTS_DIR = Path(__file__).parent / "results"

TAU = 8.0
THETA = 0.4
UNIVERSE = 97

#: slack on the post-compaction latency gates: the compacted store must
#: stay within this factor of the fragmented one.  Compaction usually
#: *wins* both races; the generous bound only trips on structural
#: regressions (e.g. the merged segment losing its lazy fast path),
#: never on a noisy CI box timing microsecond-scale queries.
LATENCY_SLACK = 5.0


def _stream(n: int):
    ids = (np.arange(n, dtype=np.int64) * 7) % UNIVERSE
    ts = np.arange(n, dtype=np.float64) * 0.25
    return ids, ts


def _panel(horizon: float):
    panel_ids = np.repeat(np.arange(UNIVERSE, dtype=np.int64), 5)
    panel_ts = np.tile(np.linspace(0.0, horizon, 5), UNIVERSE)
    return panel_ids, panel_ts


def _time_queries(store, horizon: float, repeats: int = 3) -> dict:
    panel_ids, panel_ts = _panel(horizon)
    best_point = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        point = store.point_query_batch(panel_ids, panel_ts, TAU)
        best_point = min(best_point, time.perf_counter() - t0)
    probe_ts = np.linspace(0.0, horizon, 5)
    best_events = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = [
            store.bursty_event_query(float(t), THETA, TAU)
            for t in probe_ts
        ]
        best_events = min(best_events, time.perf_counter() - t0)
    return {
        "point_panel_seconds": best_point,
        "bursty_event_seconds": best_events,
        "point_answers": point,
        "event_answers": events,
    }


def _time_recover(directory) -> dict:
    t0 = time.perf_counter()
    store = recover(directory)
    elapsed = time.perf_counter() - t0
    count = store.count
    segments = len(store._segment_names)
    store.close()
    return {
        "recover_seconds": elapsed,
        "records": int(count),
        "segments": int(segments),
    }


def _measure_layout(directory, horizon: float) -> dict:
    recovery = _time_recover(directory)
    store = recover(directory)
    try:
        queries = _time_queries(store, horizon)
    finally:
        store.close()
    return recovery | queries


def run_compaction_benchmark(
    smoke: bool = False, out_path: Path | None = None
) -> dict:
    seal_elements = 64
    n_segments = 24 if smoke else 200
    fanin = 8
    n_records = seal_elements * n_segments
    ids, ts = _stream(n_records)
    horizon = float(ts[-1]) + 2 * TAU
    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(scratch) / "store"
        store = create_durable(
            directory, seal_elements=seal_elements, fsync="never"
        )
        with store:
            store.extend_batch(ids, ts)
            store.seal()
            segments_before = len(store._segment_names)
        before = _measure_layout(directory, horizon)

        store = recover(directory)
        with store:
            t0 = time.perf_counter()
            runs = store.compact(fanin=fanin, min_segments=2)
            compact_seconds = time.perf_counter() - t0
            segments_after = len(store._segment_names)
        after = _measure_layout(directory, horizon)

    identical = bool(
        np.array_equal(
            before.pop("point_answers"), after.pop("point_answers")
        )
        and before.pop("event_answers") == after.pop("event_answers")
    )
    payload = {
        "workload": {
            "records": int(n_records),
            "seal_elements": seal_elements,
            "segments_before": int(segments_before),
            "fanin": fanin,
            "smoke": smoke,
        },
        "compaction": {
            "runs": int(runs),
            "compact_seconds": compact_seconds,
            "segments_after": int(segments_after),
            "segment_budget": math.ceil(segments_before / fanin),
        },
        "before": before,
        "after": after,
        "answers_identical": identical,
        "metrics": global_registry().snapshot(),
    }
    target = out_path or RESULTS_DIR / "BENCH_compaction.json"
    target.parent.mkdir(exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_compaction_results(payload: dict) -> list[str]:
    """Regression gate over a BENCH_compaction.json payload."""
    failures = []
    compaction = payload["compaction"]
    before = payload["before"]
    after = payload["after"]
    if compaction["segments_after"] > compaction["segment_budget"]:
        failures.append(
            f"compaction left {compaction['segments_after']} segments; "
            f"the size-tiered contract allows at most "
            f"{compaction['segment_budget']}"
        )
    if compaction["runs"] < 1:
        failures.append("compaction never ran on a fragmented store")
    if not payload["answers_identical"]:
        failures.append("compacted store changed query answers")
    if after["records"] != before["records"]:
        failures.append(
            f"recovery round-tripped {after['records']} records after "
            f"compaction vs {before['records']} before"
        )
    for key, label in (
        ("point_panel_seconds", "point-query panel"),
        ("bursty_event_seconds", "bursty-event queries"),
        ("recover_seconds", "recovery"),
    ):
        if after[key] > before[key] * LATENCY_SLACK:
            failures.append(
                f"{label}: {after[key]:.4f}s after compaction vs "
                f"{before[key]:.4f}s before (> {LATENCY_SLACK:.0f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="segment compaction query/recovery benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when compaction misses its contract",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    payload = run_compaction_benchmark(smoke=args.smoke, out_path=args.out)
    compaction = payload["compaction"]
    print(
        f"segments: {payload['workload']['segments_before']} -> "
        f"{compaction['segments_after']} "
        f"(budget {compaction['segment_budget']}, "
        f"{compaction['runs']} runs, "
        f"{compaction['compact_seconds']:.3f}s, "
        f"answers identical: {payload['answers_identical']})"
    )
    header = (
        f"{'layout':<12} {'segments':>9} {'recover s':>10} "
        f"{'panel s':>9} {'events s':>9}"
    )
    print(header)
    print("-" * len(header))
    for label, row in (("before", payload["before"]),
                       ("after", payload["after"])):
        print(
            f"{label:<12} {row['segments']:>9} "
            f"{row['recover_seconds']:>10.4f} "
            f"{row['point_panel_seconds']:>9.4f} "
            f"{row['bursty_event_seconds']:>9.4f}"
        )
    if args.check:
        failures = check_compaction_results(payload)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
