"""Fig. 8 — PBE-1 parameter study: space & construction cost vs eta (8a),
point-query accuracy vs eta (8b), on soccer and swimming.

Expected shape (paper): space grows linearly in eta; construction time
grows with eta; the approximation error collapses quickly as eta grows
(errors in the tens for burstiness values in the hundreds/thousands once
eta reaches a modest fraction of the buffer size).
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.eval.harness import pbe1_parameter_study
from repro.eval.tables import format_table

ETAS = [25, 50, 100, 200, 400]
BUFFER = 1500


def test_fig08_pbe1_parameter_study(
    benchmark, soccer_timestamps, swimming_timestamps
):
    streams = {
        "soccer": soccer_timestamps,
        "swimming": swimming_timestamps,
    }

    rows = benchmark.pedantic(
        pbe1_parameter_study,
        args=(streams, ETAS),
        kwargs={"buffer_size": BUFFER, "n_queries": 100},
        rounds=1,
        iterations=1,
    )
    report(
        "fig08_pbe1_params",
        format_table(
            rows,
            title=f"Fig 8: PBE-1 study (buffer n = {BUFFER}, tau = 1 day)",
        ),
    )

    for name in streams:
        series = [row for row in rows if row["event"] == name]
        spaces = [row["space_kb"] for row in series]
        errors = [row["mean_abs_error"] for row in series]
        # 8a: space strictly grows with eta, roughly linearly.
        assert all(a < b for a, b in zip(spaces, spaces[1:]))
        growth = spaces[-1] / spaces[0]
        assert 0.25 * (ETAS[-1] / ETAS[0]) <= growth <= 4 * (
            ETAS[-1] / ETAS[0]
        )
        # 8b: error shrinks as eta grows.
        assert errors[0] > errors[-1]
        assert errors[-1] < np.mean(errors[:2])
