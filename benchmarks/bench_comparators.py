"""A4 — comparators: Persistent Count-Min space vs CM-PBE, and Kleinberg's
automaton vs the paper's acceleration-threshold bursts.
"""

from __future__ import annotations

from conftest import report

from repro.baselines.exact import ExactBurstStore
from repro.baselines.kleinberg import KleinbergBurstDetector
from repro.core.cmpbe import CMPBE
from repro.eval.metrics import mean_absolute_error
from repro.eval.tables import format_table
from repro.sketch.persistent_countmin import PersistentCountMin
from repro.workloads.profiles import DAY

import numpy as np


def test_a4_pcm_vs_cmpbe(benchmark, olympicrio_stream):
    """PCM keeps exact per-cell histories; CM-PBE compresses them.  At a
    similar point-query error, CM-PBE should be several times smaller —
    that compression is the paper's core contribution over PCM."""
    stream = olympicrio_stream
    exact = ExactBurstStore.from_stream(stream)
    t_end = float(stream.timestamps[-1])

    def build():
        pcm = PersistentCountMin(width=6, depth=3, seed=0)
        for event_id, timestamp in stream:
            pcm.update(event_id, timestamp)
        cmpbe = CMPBE.with_pbe1(
            eta=150, width=6, depth=3, buffer_size=1500, seed=0
        )
        cmpbe.extend(stream)
        cmpbe.finalize()
        return pcm, cmpbe

    pcm, cmpbe = benchmark.pedantic(build, rounds=1, iterations=1)

    rng = np.random.default_rng(0)
    event_ids = exact.event_ids()
    queries = [
        (int(event_ids[rng.integers(0, len(event_ids))]),
         float(rng.uniform(2 * DAY, t_end)))
        for _ in range(100)
    ]
    truths = [exact.burstiness(e, t, DAY) for e, t in queries]
    pcm_err = mean_absolute_error(
        [pcm.burstiness(e, t, DAY) for e, t in queries], truths
    )
    cm_err = mean_absolute_error(
        [cmpbe.burstiness(e, t, DAY) for e, t in queries], truths
    )
    rows = [
        {"method": "PCM (exact cells)",
         "space_mb": pcm.size_in_bytes() / 2**20,
         "mean_abs_error": pcm_err},
        {"method": "CM-PBE-1 (eta=150)",
         "space_mb": cmpbe.size_in_bytes() / 2**20,
         "mean_abs_error": cm_err},
    ]
    report(
        "comparator_a4_pcm",
        format_table(rows, title="A4: PCM vs CM-PBE (olympicrio-like)"),
    )
    assert cmpbe.size_in_bytes() < pcm.size_in_bytes() / 2


def test_a4_kleinberg_vs_threshold(benchmark, soccer_timestamps):
    """Kleinberg's burst windows should overlap the acceleration-based
    bursty intervals on the same stream — two definitions, one story."""
    exact = ExactBurstStore()
    for t in soccer_timestamps:
        exact.update(0, t)
    grid = np.arange(2 * DAY, 31 * DAY, DAY / 4)
    values = [exact.burstiness(0, t, DAY) for t in grid]
    theta = 0.5 * max(values)
    t_end = soccer_timestamps[-1] + 2 * DAY
    threshold_intervals = exact.bursty_times(0, theta, DAY, t_end=t_end)

    detector = KleinbergBurstDetector(s=2.0, gamma=1.0)
    kleinberg_intervals = benchmark.pedantic(
        detector.burst_intervals,
        args=(soccer_timestamps,),
        rounds=1,
        iterations=1,
    )

    rows = [
        {"method": "acceleration threshold",
         "n_intervals": len(threshold_intervals),
         "first_day": threshold_intervals[0][0] / DAY,
         "last_day": threshold_intervals[-1][1] / DAY},
        {"method": "kleinberg automaton",
         "n_intervals": len(kleinberg_intervals),
         "first_day": kleinberg_intervals[0].start / DAY,
         "last_day": kleinberg_intervals[-1].end / DAY},
    ]
    report(
        "comparator_a4_kleinberg",
        format_table(rows, title="A4: burst definitions on soccer"),
    )

    def overlap(a_intervals, b_intervals):
        total = 0.0
        for s1, e1 in a_intervals:
            for s2, e2 in b_intervals:
                total += max(0.0, min(e1, e2) - max(s1, s2))
        return total

    klein = [(iv.start, iv.end) for iv in kleinberg_intervals]
    shared = overlap(threshold_intervals, klein)
    assert shared > 0, "the two burst definitions must agree somewhere"
