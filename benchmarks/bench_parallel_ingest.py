"""Parallel-ingest scaling and seal-stall benchmark (BENCH_parallel.json).

PR 8 added multi-process sharded durable ingest plus background
sealing; this suite locks in both claims with measured numbers:

* **writers scaling** — durable records/s through a
  :class:`~repro.core.parallel_ingest.ParallelIngestCoordinator` at 1,
  2 and 4 writer processes.  The workload is fsync-bound on purpose:
  ``fsync="always"`` with a fixed per-writer chunk size, so every
  writer pays one fsync per sub-batch and per-record durability work
  is constant across writer counts.  Two scaling metrics are recorded:

  - ``speedup_vs_1`` — wall-clock records/s relative to one writer.
    Extra writers win by overlapping fsync stalls, so this needs real
    parallel capacity: ≥4 CPUs, and a filesystem whose journal can
    commit for several writers at once.
  - ``ingest_concurrency`` — aggregate in-writer apply/flush seconds
    per wall-clock second (I/O waits included), i.e. how many writers
    were simultaneously ingesting.  This isolates the property the
    multi-process design must provide — writers genuinely overlap —
    and is measurable even on a single-CPU host where one core and one
    journal thread cap the wall-clock gain.

  ``--check`` applies the 1.8x floor to wall-clock speedup when the
  host has ≥4 CPUs and to ingest concurrency otherwise; the JSON
  records ``cpu_count`` and which gate applied.  Every recovered
  directory is verified against the ingested record count before any
  throughput is reported.
* **seal-stall latency** — per-``extend_batch`` p50/p99 on a
  single-process :class:`~repro.core.durable.DurableBurstStore` with
  inline vs background sealing, ``seal_elements`` sized so a seal
  lands on a few percent of batches: inline sealing parks the whole
  segment-write/WAL-rotate/manifest-commit inside those batches and
  the p99 shows it; background sealing leaves only the cheap freeze on
  the hot path.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parallel_ingest.py \
        [--smoke] [--check]

``--smoke`` shrinks the workload for a CI run; ``--check`` exits
nonzero when 4 writers fall below the scaling floor, background
sealing fails to beat inline p99, or a recovery round-trips the wrong
record count.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.durable import DurableBurstStore, recover
from repro.core.metrics import global_registry
from repro.core.parallel_ingest import ParallelIngestCoordinator

RESULTS_DIR = Path(__file__).parent / "results"

#: Records handed to each writer per coordinator chunk in the scaling
#: section.  Under ``fsync="always"`` this fixes the fsync work per
#: record regardless of writer count, which is what makes the scaling
#: comparison honest.
CHUNK_PER_WRITER = 32

WRITER_COUNTS = (1, 2, 4)

#: Floor 4 writers must clear over 1 writer in --check runs — applied
#: to wall-clock speedup on hosts with >= MIN_CPUS_FOR_WALL_GATE CPUs
#: and to ingest concurrency otherwise (see module docstring).
SCALING_FLOOR = 1.8
MIN_CPUS_FOR_WALL_GATE = 4

#: Chunks ingested before the timed window opens: brings every writer
#: process fully up (spawn + imports + store open happen while the
#: first chunks queue) and warms the WAL/journal path.
WARMUP_CHUNKS = 8

N_EVENTS = 997


def _stream(n: int):
    ids = (np.arange(n, dtype=np.int64) * 7) % N_EVENTS
    ts = np.arange(n, dtype=np.float64)
    return ids, ts


def _time_parallel(writers: int, n_records: int, root: Path) -> dict:
    """Durable ingest wall time through ``writers`` processes.

    Process spawn/teardown and warm-up are excluded from the timed
    window — the benchmark measures steady-state ingest, and a
    coordinator is opened once per stream, not once per batch.  The
    window opens after a warm-up ``flush()`` barrier and closes at the
    final ``flush()``, so every timed record is acknowledged durable
    before the clock stops.
    """
    ids, ts = _stream(n_records)
    chunk = CHUNK_PER_WRITER * writers
    warmup = WARMUP_CHUNKS * chunk
    directory = root / f"parallel-{writers}"
    coordinator = ParallelIngestCoordinator(
        directory,
        writers=writers,
        backend="exact",
        seal_elements=2 * n_records,  # isolate the append/fsync path
        fsync="always",
    )
    try:
        for begin in range(0, warmup, chunk):
            coordinator.extend_batch(
                ids[begin : begin + chunk], ts[begin : begin + chunk]
            )
        coordinator.flush()
        busy_before = sum(coordinator.writer_busy_seconds())
        start = time.perf_counter()
        for begin in range(warmup, n_records, chunk):
            coordinator.extend_batch(
                ids[begin : begin + chunk], ts[begin : begin + chunk]
            )
        acked = coordinator.flush()
        elapsed = time.perf_counter() - start
        busy = sum(coordinator.writer_busy_seconds()) - busy_before
    finally:
        coordinator.close()

    timed_records = n_records - warmup
    recovered = recover(directory)
    count = int(recovered.count)
    if hasattr(recovered, "shards"):
        replayed = [
            int(child.replayed_records) for child in recovered.shards
        ]
    else:
        replayed = [int(recovered.replayed_records)]
    recovered.close()
    shutil.rmtree(directory)
    return {
        "writers": int(writers),
        "n_records": int(timed_records),
        "chunk_records": int(chunk),
        "chunk_per_writer": CHUNK_PER_WRITER,
        "fsync": "always",
        "ingest_seconds": elapsed,
        "records_per_s": timed_records / elapsed,
        "ingest_concurrency": busy / elapsed,
        "acked_records": int(acked),
        "recovered_count": count,
        "replayed_per_shard": replayed,
        "count_correct": count == n_records and acked == n_records,
    }


def _time_seal_stalls(
    background: bool, n_records: int, batch: int, root: Path
) -> dict:
    """Per-batch append latency with inline vs background sealing.

    ``seal_elements`` is thirty-two times the batch size, so ~3% of
    batches trigger a seal — enough that the p99 always lands on seal
    batches, sparse enough that the background seal thread keeps up
    without backpressure.  ``fsync="batch"`` keeps the fixed
    fsync-per-append cost out of the picture; what remains in the tail
    is the seal itself.
    """
    ids, ts = _stream(n_records)
    directory = root / ("seal-bg" if background else "seal-inline")
    store = DurableBurstStore(
        directory,
        backend="exact",
        seal_elements=32 * batch,
        fsync="batch",
        background_seal=background,
    )
    latencies = []
    try:
        for begin in range(0, n_records, batch):
            start = time.perf_counter()
            store.extend_batch(
                ids[begin : begin + batch], ts[begin : begin + batch]
            )
            latencies.append(time.perf_counter() - start)
        if background:
            store.drain_seals()
        count = int(store.count)
    finally:
        store.close()
    shutil.rmtree(directory)
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "mode": "background" if background else "inline",
        "n_records": int(n_records),
        "batch": int(batch),
        "seal_elements": int(32 * batch),
        "n_batches": int(arr.size),
        "p50_us": float(np.percentile(arr, 50) * 1e6),
        "p99_us": float(np.percentile(arr, 99) * 1e6),
        "max_us": float(arr.max() * 1e6),
        "count_correct": count == n_records,
    }


def run_parallel_benchmark(
    smoke: bool = False, out_path: Path | None = None
) -> dict:
    n_parallel = 10_000 if smoke else 24_000
    n_seal = 131_072 if smoke else 262_144
    seal_batch = 256
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        scaling_rows = [
            _time_parallel(writers, n_parallel, root)
            for writers in WRITER_COUNTS
        ]
        seal_rows = [
            _time_seal_stalls(background, n_seal, seal_batch, root)
            for background in (False, True)
        ]
    base = scaling_rows[0]["records_per_s"]
    for row in scaling_rows:
        row["speedup_vs_1"] = row["records_per_s"] / base
    cpu_count = os.cpu_count() or 1
    payload = {
        "workload": {
            "parallel_records": int(n_parallel),
            "chunk_per_writer": CHUNK_PER_WRITER,
            "writer_counts": list(WRITER_COUNTS),
            "seal_records": int(n_seal),
            "seal_batch": int(seal_batch),
            "cpu_count": cpu_count,
            "scaling_gate": (
                "records_per_s"
                if cpu_count >= MIN_CPUS_FOR_WALL_GATE
                else "ingest_concurrency"
            ),
            "smoke": smoke,
        },
        "scaling": scaling_rows,
        "seal_stalls": seal_rows,
        "metrics": global_registry().snapshot(),
    }
    target = out_path or RESULTS_DIR / "BENCH_parallel.json"
    target.parent.mkdir(exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_parallel_results(payload: dict) -> list[str]:
    """Regression gate over a BENCH_parallel.json payload.

    The 4-writer scaling floor applies to wall-clock speedup when the
    measuring host had >= ``MIN_CPUS_FOR_WALL_GATE`` CPUs; a host with
    fewer cores cannot exhibit wall-clock scaling no matter how good
    the coordinator is (one core runs coordinator and writers alike,
    and a single journal thread serialises their commits), so there
    the floor applies to ingest concurrency — writers overlapping
    their apply/fsync work — which the multi-process design must
    deliver on any host.
    """
    failures = []
    for row in payload["scaling"]:
        tag = f"scaling[{row['writers']}w]"
        if not row["count_correct"]:
            failures.append(
                f"{tag}: recovered {row['recovered_count']} records, "
                f"acked {row['acked_records']}"
            )
    by_writers = {row["writers"]: row for row in payload["scaling"]}
    four = by_writers.get(4)
    if four is not None:
        if payload["workload"]["scaling_gate"] == "records_per_s":
            if four["speedup_vs_1"] < SCALING_FLOOR:
                failures.append(
                    f"scaling[4w]: {four['speedup_vs_1']:.2f}x over one "
                    f"writer is below the {SCALING_FLOOR}x floor"
                )
        elif four["ingest_concurrency"] < SCALING_FLOOR:
            failures.append(
                f"scaling[4w]: ingest concurrency "
                f"{four['ingest_concurrency']:.2f} is below the "
                f"{SCALING_FLOOR} floor"
            )
    by_mode = {row["mode"]: row for row in payload["seal_stalls"]}
    for row in payload["seal_stalls"]:
        if not row["count_correct"]:
            failures.append(
                f"seal_stalls[{row['mode']}]: wrong record count"
            )
    inline, bg = by_mode.get("inline"), by_mode.get("background")
    if inline and bg and bg["p99_us"] >= inline["p99_us"]:
        failures.append(
            f"seal_stalls: background p99 {bg['p99_us']:.0f}us did not "
            f"beat inline p99 {inline['p99_us']:.0f}us"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="parallel ingest scaling / seal stall benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero below the scaling floor",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    payload = run_parallel_benchmark(smoke=args.smoke, out_path=args.out)
    header = (
        f"{'writers':>7} {'records':>8} {'records/s':>12} "
        f"{'speedup':>8} {'concurrency':>11} {'recovered':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["scaling"]:
        print(
            f"{row['writers']:>7} {row['n_records']:>8,} "
            f"{row['records_per_s']:>12,.0f} "
            f"{row['speedup_vs_1']:>7.2f}x "
            f"{row['ingest_concurrency']:>11.2f} "
            f"{row['recovered_count']:>10,}"
        )
    print()
    header = (
        f"{'sealing':<12} {'batches':>8} {'p50 us':>9} "
        f"{'p99 us':>9} {'max us':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["seal_stalls"]:
        print(
            f"{row['mode']:<12} {row['n_batches']:>8,} "
            f"{row['p50_us']:>9,.0f} {row['p99_us']:>9,.0f} "
            f"{row['max_us']:>9,.0f}"
        )
    if args.check:
        failures = check_parallel_results(payload)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
