"""Scalar-vs-batched historical read benchmark (BENCH_query.json).

PR 1 gave the write side a vectorized batch path; this suite measures
the read side: every registered backend answers the same point-query
workload twice — once as a scalar ``point_query`` loop, once through
``point_query_batch`` — and the results must be bit-identical before
any timing is reported.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_query.py [--smoke] [--check]

``--smoke`` shrinks the workload and query counts for a CI run;
``--check`` exits nonzero if the batched path ever diverges from the
scalar loop or the CM-PBE grids fall below the vectorization floor at
10k+ queries.

The batched wins are structural, not incidental: one ``searchsorted``
over each PBE's corners replaces a bisect per query, the CM-PBE row
combiner becomes one ``np.median`` over a matrix, per-id hash columns
are computed once per batch, and the sharded composite fans shard
batches out on a thread pool.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.metrics import global_registry
from repro.core.store import create_store
from repro.workloads.olympics import make_olympicrio
from repro.workloads.profiles import DAY

RESULTS_DIR = Path(__file__).parent / "results"

UNIVERSE = 128

_SKETCH = dict(eta=60, buffer_size=400, width=16, depth=5, seed=0)

#: (label, registry key, create_store config) — one row per read engine.
BACKENDS: list[tuple[str, str, dict]] = [
    ("exact", "exact", {}),
    ("cm-pbe-1", "cm-pbe-1", dict(universe_size=UNIVERSE, **_SKETCH)),
    (
        "cm-pbe-2",
        "cm-pbe-2",
        dict(universe_size=UNIVERSE, gamma=12.0, unit=1.0, width=16,
             depth=5, seed=0),
    ),
    ("direct", "direct", dict(cell="pbe1", eta=60, buffer_size=400)),
    (
        "index",
        "index",
        dict(universe_size=UNIVERSE, cell="pbe1", **_SKETCH),
    ),
    (
        "sharded-x3-cm-pbe-1",
        "sharded",
        dict(shards=3, backend="cm-pbe-1", universe_size=UNIVERSE,
             **_SKETCH),
    ),
]

#: Backends whose batched point path is fully vectorized and must clear
#: this multiple over the scalar loop at VECTORIZED_AT queries or more.
VECTORIZED_FLOOR = 5.0
VECTORIZED_AT = 10_000
VECTORIZED_LABELS = {"cm-pbe-1", "cm-pbe-2"}

FULL_SIZES = [1_000, 10_000, 100_000]
SMOKE_SIZES = [500, 2_000]

#: Best-of repeats per query-count tier; large tiers run once.
def _repeats(n_queries: int) -> int:
    if n_queries <= 1_000:
        return 3
    if n_queries <= 10_000:
        return 2
    return 1


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time; one untimed warmup absorbs cold caches."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_query_comparison(
    smoke: bool = False, out_path: Path | None = None
) -> dict:
    """Time scalar vs batched point queries per backend; write the JSON."""
    n_mentions = 4_000 if smoke else 30_000
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    stream = make_olympicrio(n_events=UNIVERSE, total_mentions=n_mentions)
    ids_column, ts_column = stream.as_columns()
    t_end = float(ts_column[-1])
    tau = DAY

    rng = np.random.default_rng(2016)
    workloads = {
        n: (
            rng.integers(0, UNIVERSE, n).astype(np.int64),
            rng.uniform(0.0, t_end + 2 * tau, n),
        )
        for n in sizes
    }

    rows = []
    for label, backend, cfg in BACKENDS:
        store = create_store(backend, **cfg)
        store.extend_batch(ids_column, ts_column)
        store.finalize()
        for n in sizes:
            query_ids, query_ts = workloads[n]
            id_list = query_ids.tolist()
            ts_list = query_ts.tolist()

            def scalar():
                return [
                    store.point_query(event_id, t, tau)
                    for event_id, t in zip(id_list, ts_list)
                ]

            def batch():
                return store.point_query_batch(query_ids, query_ts, tau)

            identical = bool(
                np.array_equal(
                    np.asarray(scalar(), dtype=np.float64), batch()
                )
            )
            repeats = _repeats(n)
            scalar_s = _best_seconds(scalar, repeats)
            batch_s = _best_seconds(batch, repeats)
            rows.append(
                {
                    "backend": label,
                    "n_queries": int(n),
                    "identical": identical,
                    "scalar_seconds": scalar_s,
                    "batch_seconds": batch_s,
                    "scalar_queries_per_s": n / scalar_s,
                    "batch_queries_per_s": n / batch_s,
                    "speedup": scalar_s / batch_s,
                }
            )

    payload = {
        "workload": {
            "stream": f"olympicrio ({UNIVERSE} events)",
            "n_mentions": int(ids_column.size),
            "query_sizes": [int(n) for n in sizes],
            "tau": tau,
            "smoke": smoke,
        },
        "rows": rows,
        "max_speedup": max(r["speedup"] for r in rows),
        # Operational counters accumulated over the run (LRU hit rates,
        # shard fan-out latencies, ...), so a regression in the serving
        # path shows up next to the wall-clock numbers.
        "metrics": global_registry().snapshot(),
    }
    target = out_path or RESULTS_DIR / "BENCH_query.json"
    target.parent.mkdir(exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_query_results(payload: dict) -> list[str]:
    """Regression gate over a BENCH_query.json payload."""
    failures = []
    for row in payload["rows"]:
        tag = f"{row['backend']} @ {row['n_queries']}"
        if not row["identical"]:
            failures.append(f"{tag}: batched result differs from scalar")
        if (
            row["backend"] in VECTORIZED_LABELS
            and row["n_queries"] >= VECTORIZED_AT
            and row["speedup"] < VECTORIZED_FLOOR
        ):
            failures.append(
                f"{tag}: below {VECTORIZED_FLOOR:.0f}x vectorization "
                f"floor (got {row['speedup']:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar-vs-batched point query comparison"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on divergence or a speedup regression",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    payload = run_query_comparison(smoke=args.smoke, out_path=args.out)
    header = (
        f"{'backend':<20} {'queries':>8} {'scalar q/s':>13} "
        f"{'batch q/s':>13} {'speedup':>8} {'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["rows"]:
        print(
            f"{row['backend']:<20} {row['n_queries']:>8} "
            f"{row['scalar_queries_per_s']:>13,.0f} "
            f"{row['batch_queries_per_s']:>13,.0f} "
            f"{row['speedup']:>7.2f}x {str(row['identical']):>10}"
        )
    print(f"\nmax speedup: {payload['max_speedup']:.1f}x")
    if args.check:
        failures = check_query_results(payload)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
