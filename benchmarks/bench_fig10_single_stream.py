"""Fig. 10 — single event stream: (a) error vs space with PBE-1 and PBE-2
given the *same* byte budget; (b) error vs exact-curve size n at a fixed
~10 KB budget.

Expected shape (paper): both errors fall as space grows and rise as the
summarized curve grows at fixed space.  DEVIATION (see EXPERIMENTS.md):
the paper reports PBE-1 always winning at matched space; on our smooth
synthetic rate curves the PLA sketch wins instead — sloped segments fit
locally-linear cumulative curves far better than flat staircase steps,
and our PBE-2 takes the feasibility polygon's centroid (deterministic)
where the paper picks a random feasible point.  The assertion therefore
checks the robust shape (monotone error-space trade-off for both
sketches) and records the head-to-head rows for inspection.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.core.pbe1 import PBE1
from repro.eval.harness import (
    fit_pbe2_to_space,
    single_stream_n_vs_error,
)
from repro.eval.metrics import mean_absolute_error
from repro.eval.tables import format_table
from repro.streams.frequency import StaircaseCurve
from repro.workloads.profiles import DAY

TARGET_KB = [1, 2, 4, 8, 16]
BUFFER = 1500


def _matched_space_rows(name: str, timestamps: list[float]) -> list[dict]:
    curve = StaircaseCurve.from_timestamps(timestamps)
    t_end = float(timestamps[-1])
    n_buffers = max(1, int(np.ceil(curve.n_corners / BUFFER)))
    rng = np.random.default_rng(0)
    queries = rng.uniform(2 * DAY, t_end, size=100)
    truths = [curve.burstiness(t, DAY) for t in queries]
    rows = []
    for target_kb in TARGET_KB:
        target = target_kb * 1024
        eta = max(2, min(BUFFER, target // (16 * n_buffers)))
        pbe1 = PBE1(eta=eta, buffer_size=BUFFER)
        pbe1.extend(timestamps)
        pbe1.flush()
        pbe2 = fit_pbe2_to_space(timestamps, target)
        err1 = mean_absolute_error(
            [pbe1.burstiness(t, DAY) for t in queries], truths
        )
        err2 = mean_absolute_error(
            [pbe2.burstiness(t, DAY) for t in queries], truths
        )
        rows.append(
            {
                "event": name,
                "target_kb": target_kb,
                "pbe1_kb": pbe1.size_in_bytes() / 1024,
                "pbe2_kb": pbe2.size_in_bytes() / 1024,
                "pbe1_error": err1,
                "pbe2_error": err2,
            }
        )
    return rows


def test_fig10a_space_vs_accuracy(
    benchmark, soccer_timestamps, swimming_timestamps
):
    def run():
        return _matched_space_rows(
            "soccer", soccer_timestamps
        ) + _matched_space_rows("swimming", swimming_timestamps)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig10a_space_vs_accuracy",
        format_table(
            rows, title="Fig 10a: PBE-1 vs PBE-2 at matched space"
        ),
    )
    for name in ("soccer", "swimming"):
        series = [row for row in rows if row["event"] == name]
        # Errors shrink as space grows, for both sketches.
        assert series[0]["pbe1_error"] >= series[-1]["pbe1_error"]
        assert series[0]["pbe2_error"] >= series[-1]["pbe2_error"]
        # Both sketches achieve small errors relative to the burstiness
        # scale (hundreds to thousands) once given a few KB.
        assert series[-1]["pbe1_error"] < series[0]["pbe1_error"] / 3
        # Space targets are actually matched (within 2x).
        for row in series:
            assert 0.5 <= row["pbe1_kb"] / row["pbe2_kb"] <= 2.0


def test_fig10b_n_vs_accuracy(
    benchmark, soccer_timestamps, swimming_timestamps
):
    n_max = len(set(soccer_timestamps))
    n_values = [
        n for n in (2_000, 5_000, 10_000, 15_000, 19_000) if n <= n_max
    ]
    rows = benchmark.pedantic(
        single_stream_n_vs_error,
        args=(
            {"soccer": soccer_timestamps, "swimming": swimming_timestamps},
            n_values,
        ),
        kwargs={"target_bytes": 10 * 1024, "n_queries": 100},
        rounds=1,
        iterations=1,
    )
    report(
        "fig10b_n_vs_accuracy",
        format_table(
            rows, title="Fig 10b: error vs curve size n at ~10 KB"
        ),
    )
    for name in ("soccer", "swimming"):
        series = [row for row in rows if row["event"] == name]
        # With fixed space, summarizing a longer curve costs accuracy:
        # the largest-n error should exceed the smallest-n error for the
        # buffer-free sketch (staircase PBE-1 at 10 KB is near-exact for
        # these scales, so the claim is checked on PBE-2).
        assert series[-1]["pbe2_error"] >= series[0]["pbe2_error"] * 0.8
