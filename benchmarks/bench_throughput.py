"""Construction throughput and point-query latency micro-benchmarks.

These are the repeated-measurement benchmarks (pytest-benchmark's bread
and butter): elements/second into each sketch and microseconds per point
query out of it.  The paper reports construction times in Fig. 8a/9a;
this suite gives the per-operation view.

Run standalone (no pytest needed) for the scalar-vs-batch ingest
comparison, which writes ``benchmarks/results/BENCH_ingest.json``::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--quick] [--check]

``--quick`` shrinks the workloads for a CI smoke run; ``--check`` exits
nonzero if batching regressed (any layer slower than scalar beyond
noise, or the vectorized layers below their expected multiple).

A note on what the numbers show: the hashing and Count-Min layers
vectorize end-to-end, so batching wins an order of magnitude over
per-element calls.  The PBE cores are compression-bound — PBE-1's
optimal-staircase DP at each buffer compression, PBE-2's polygon
clipping per committed corner — so their ingest floors are pinned to
the *seed* scalar rates recorded before the compression cores were
vectorized (``PBE_SEED_SCALAR_RATES``): ``extend_batch`` must clear
``PBE_BATCH_FLOOR_MULTIPLE`` times those rates.  The in-run scalar
column has itself been accelerated by the same kernels, so the
scalar/batch ratio *within* one run understates the gain — compare
against the seed constants, not the neighbouring column.  Every
benchmarked row is additionally bit-identity-checked: the batch-built
sketch must serialize to exactly the same bytes (or hash to the same
values) as its scalar-built twin, so a rate can never be bought with a
drifted answer.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.cmpbe import CMPBE
from repro.core.dyadic import BurstyEventIndex
from repro.core.metrics import global_registry
from repro.core.pbe1 import PBE1
from repro.core.pbe2 import PBE2
from repro.core.serialize import dump_cmpbe, dump_pbe1, dump_pbe2
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashing import HashFamily
from repro.workloads.profiles import DAY

N_ELEMENTS = 4_000


@pytest.fixture(scope="module")
def burst_chunk(soccer_timestamps):
    return soccer_timestamps[:N_ELEMENTS]


@pytest.fixture(scope="module")
def mixed_chunk(olympicrio_stream):
    return list(olympicrio_stream)[:N_ELEMENTS]


class TestConstructionThroughput:
    def test_pbe1_ingest(self, benchmark, burst_chunk):
        def run():
            sketch = PBE1(eta=100, buffer_size=1500)
            sketch.extend(burst_chunk)
            sketch.flush()
            return sketch

        sketch = benchmark(run)
        assert sketch.count == len(burst_chunk)

    def test_pbe2_ingest(self, benchmark, burst_chunk):
        def run():
            sketch = PBE2(gamma=20.0)
            sketch.extend(burst_chunk)
            sketch.finalize()
            return sketch

        sketch = benchmark(run)
        assert sketch.count == len(burst_chunk)

    def test_cmpbe1_ingest(self, benchmark, mixed_chunk):
        def run():
            sketch = CMPBE.with_pbe1(
                eta=100, width=6, depth=3, buffer_size=1500
            )
            sketch.extend(mixed_chunk)
            return sketch

        sketch = benchmark(run)
        assert sketch.count == len(mixed_chunk)

    def test_index_ingest(self, benchmark, mixed_chunk):
        def run():
            index = BurstyEventIndex.with_pbe2(
                128, gamma=20.0, width=6, depth=3
            )
            index.extend(mixed_chunk)
            return index

        index = benchmark(run)
        assert index.level_sketch(0).count == len(mixed_chunk)


class TestBatchedConstructionThroughput:
    """Batched counterparts of the scalar ingest benchmarks above."""

    @pytest.fixture(scope="class")
    def burst_column(self, burst_chunk):
        return np.asarray(burst_chunk, dtype=np.float64)

    @pytest.fixture(scope="class")
    def mixed_columns(self, mixed_chunk):
        ids = np.asarray([e for e, _ in mixed_chunk], dtype=np.int64)
        ts = np.asarray([t for _, t in mixed_chunk], dtype=np.float64)
        return ids, ts

    def test_pbe1_ingest_batch(self, benchmark, burst_column):
        def run():
            sketch = PBE1(eta=100, buffer_size=1500)
            sketch.extend_batch(burst_column)
            sketch.flush()
            return sketch

        sketch = benchmark(run)
        assert sketch.count == burst_column.size

    def test_pbe2_ingest_batch(self, benchmark, burst_column):
        def run():
            sketch = PBE2(gamma=20.0)
            sketch.extend_batch(burst_column)
            sketch.finalize()
            return sketch

        sketch = benchmark(run)
        assert sketch.count == burst_column.size

    def test_cmpbe1_ingest_batch(self, benchmark, mixed_columns):
        ids, ts = mixed_columns

        def run():
            sketch = CMPBE.with_pbe1(
                eta=100, width=6, depth=3, buffer_size=1500
            )
            sketch.extend_batch(ids, ts)
            return sketch

        sketch = benchmark(run)
        assert sketch.count == ids.size

    def test_index_ingest_batch(self, benchmark, mixed_columns):
        ids, ts = mixed_columns

        def run():
            index = BurstyEventIndex.with_pbe2(
                128, gamma=20.0, width=6, depth=3
            )
            index.extend_batch(ids, ts)
            return index

        index = benchmark(run)
        assert index.level_sketch(0).count == ids.size


class TestQueryLatency:
    @pytest.fixture(scope="class")
    def built(self, soccer_timestamps, olympicrio_stream):
        pbe1 = PBE1(eta=100, buffer_size=1500)
        pbe1.extend(soccer_timestamps)
        pbe1.flush()
        pbe2 = PBE2(gamma=20.0)
        pbe2.extend(soccer_timestamps)
        pbe2.finalize()
        index = BurstyEventIndex.with_pbe1(
            128, eta=60, width=6, depth=3, buffer_size=1500
        )
        index.extend(list(olympicrio_stream)[:20_000])
        index.finalize()
        return pbe1, pbe2, index

    def test_pbe1_point_query(self, benchmark, built):
        pbe1, _, _ = built
        benchmark(pbe1.burstiness, 15 * DAY, DAY)

    def test_pbe2_point_query(self, benchmark, built):
        _, pbe2, _ = built
        benchmark(pbe2.burstiness, 15 * DAY, DAY)

    def test_index_point_query(self, benchmark, built):
        _, _, index = built
        benchmark(index.point_query, 0, 15 * DAY, DAY)

    def test_index_bursty_event_query(self, benchmark, built):
        _, _, index = built
        benchmark(index.bursty_events, 15 * DAY, 100.0, DAY)


# ----------------------------------------------------------------------
# Standalone scalar-vs-batch ingest comparison (BENCH_ingest.json)
# ----------------------------------------------------------------------
RESULTS_DIR = Path(__file__).parent / "results"

#: Layers whose batch path is fully vectorized and must clear this
#: multiple over scalar; the PBE layers are compression-bound (see the
#: module docstring) and only need to not regress.
VECTORIZED_FLOOR = 5.0
NOISE_TOLERANCE = 0.85

#: Scalar ingest rates of the compression-bound PBE cores as recorded by
#: the pre-vectorization seed run of this benchmark (elements/second,
#: ``--quick`` workload, committed in BENCH_ingest.json).  Fallback
#: yardstick for the batched ingest floor when a payload predates the
#: in-run oracle measurement; the preferred denominator is the oracle
#: rate re-measured in the same run (see ``_ingest_layers``), which a
#: shared runner's multi-minute slow phases cannot skew.
PBE_SEED_SCALAR_RATES = {"pbe1": 10_777.56, "pbe2": 43_153.08}
#: ``extend_batch`` on the PBE cores must sustain at least this multiple
#: of the seed compression path's rate (NOISE_TOLERANCE absorbs jitter).
PBE_BATCH_FLOOR_MULTIPLE = 5.0


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time; one untimed warmup absorbs cold caches.

    The collector is paused around the timed region (and the warmup's
    garbage collected before it) so a cycle collection triggered by a
    *previous* layer's allocations cannot land inside a measurement.
    """
    fn()
    gc.collect()
    best = float("inf")
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        gc.enable()
    return best


def _ingest_layers(
    soccer_ts: np.ndarray, mixed_ids: np.ndarray, mixed_ts: np.ndarray
):
    """(layer, n, vectorized, scalar_fn, batch_fn, verify_fn, oracle_fn).

    ``soccer_ts`` is the fig10 single-stream workload; the mixed columns
    drive the hash/counter/grid layers that need event ids.  Each
    ``verify_fn`` rebuilds the layer once through the scalar path and
    once through the batch path (outside any timed region) and returns
    whether the two end states are bit-identical — serialized bytes for
    the sketches, exact table/index equality for the array layers.

    The PBE rows also carry an ``oracle_fn`` (``None`` elsewhere): a full
    ingest routed through the *seed* compression path, which the tree
    keeps as the cross-check oracles — PBE-1's convex-hull-trick DP
    (:func:`repro.core.pbe1.approximate_staircase_cht`) and PBE-2's
    two-`clipped` half-plane chain.  Timing the oracle in the same run
    gives the batched-floor check a denominator that moves with the
    machine, so a shared runner's slow phases cannot fail the gate nor
    a fast phase hide a real regression.
    """
    soccer_list = soccer_ts.tolist()
    mixed_pairs = list(zip(mixed_ids.tolist(), mixed_ts.tolist()))
    family = HashFamily(depth=3, width=1 << 14, seed=1)

    def hash_scalar():
        for item in mixed_pairs:
            family.hash_all(item[0])

    def countmin_scalar():
        sketch = CountMinSketch(width=2048, depth=3, seed=1)
        for event_id, _ in mixed_pairs:
            sketch.update(event_id)

    def countmin_batch():
        CountMinSketch(width=2048, depth=3, seed=1).update_batch(mixed_ids)

    def pbe1_scalar():
        sketch = PBE1(eta=100, buffer_size=1500)
        sketch.extend(soccer_list)
        sketch.flush()

    def pbe1_batch():
        sketch = PBE1(eta=100, buffer_size=1500)
        sketch.extend_batch(soccer_ts)
        sketch.flush()

    def pbe2_scalar():
        sketch = PBE2(gamma=20.0)
        sketch.extend(soccer_list)
        sketch.finalize()

    def pbe2_batch():
        sketch = PBE2(gamma=20.0)
        sketch.extend_batch(soccer_ts)
        sketch.finalize()

    def cmpbe_scalar():
        CMPBE.with_pbe1(
            eta=100, width=6, depth=3, buffer_size=1500
        ).extend(mixed_pairs)

    def cmpbe_batch():
        CMPBE.with_pbe1(
            eta=100, width=6, depth=3, buffer_size=1500
        ).extend_batch(mixed_ids, mixed_ts)

    def hash_verify():
        batch = family.hash_many(mixed_ids)
        scalar = np.asarray(
            [family.hash_all(int(i)) for i in mixed_ids], dtype=np.int64
        )
        return bool(np.array_equal(batch, scalar))

    def countmin_verify():
        a = CountMinSketch(width=2048, depth=3, seed=1)
        for event_id, _ in mixed_pairs:
            a.update(event_id)
        b = CountMinSketch(width=2048, depth=3, seed=1)
        b.update_batch(mixed_ids)
        return bool(np.array_equal(a._table, b._table))

    def pbe1_verify():
        a = PBE1(eta=100, buffer_size=1500)
        a.extend(soccer_list)
        a.flush()
        b = PBE1(eta=100, buffer_size=1500)
        b.extend_batch(soccer_ts)
        b.flush()
        return dump_pbe1(a) == dump_pbe1(b)

    def pbe2_verify():
        a = PBE2(gamma=20.0)
        a.extend(soccer_list)
        a.finalize()
        b = PBE2(gamma=20.0)
        b.extend_batch(soccer_ts)
        b.finalize()
        return dump_pbe2(a) == dump_pbe2(b)

    def cmpbe_verify():
        a = CMPBE.with_pbe1(eta=100, width=6, depth=3, buffer_size=1500)
        a.extend(mixed_pairs)
        b = CMPBE.with_pbe1(eta=100, width=6, depth=3, buffer_size=1500)
        b.extend_batch(mixed_ids, mixed_ts)
        return dump_cmpbe(a) == dump_cmpbe(b)

    def pbe1_oracle():
        import repro.core.pbe1 as pbe1_mod

        def cht(xs, ys, eta, use_numba=None):
            return pbe1_mod.approximate_staircase_cht(xs, ys, eta)

        saved = pbe1_mod.approximate_staircase
        pbe1_mod.approximate_staircase = cht
        try:
            sketch = PBE1(eta=100, buffer_size=1500)
            sketch.extend(soccer_list)
            sketch.flush()
        finally:
            pbe1_mod.approximate_staircase = saved

    def pbe2_oracle():
        import repro.core.pbe2 as pbe2_mod
        from repro.sketch.geometry import ConvexPolygon, HalfPlane

        def chain_clip(vx, vy, t, lo, hi):
            poly = ConvexPolygon(list(zip(vx, vy)))
            poly = poly.clipped(HalfPlane(-t, -1.0, -lo))
            poly = poly.clipped(HalfPlane(t, 1.0, hi))
            verts = poly.vertices
            return [v[0] for v in verts], [v[1] for v in verts]

        saved = pbe2_mod.clip_strip
        pbe2_mod.clip_strip = chain_clip
        try:
            sketch = PBE2(gamma=20.0)
            sketch.extend(soccer_list)
            sketch.finalize()
        finally:
            pbe2_mod.clip_strip = saved

    return [
        ("hashing", mixed_ids.size, True, hash_scalar,
         lambda: family.hash_many(mixed_ids), hash_verify, None),
        ("countmin", mixed_ids.size, True, countmin_scalar, countmin_batch,
         countmin_verify, None),
        ("pbe1", soccer_ts.size, False, pbe1_scalar, pbe1_batch,
         pbe1_verify, pbe1_oracle),
        ("pbe2", soccer_ts.size, False, pbe2_scalar, pbe2_batch,
         pbe2_verify, pbe2_oracle),
        ("cmpbe-pbe1", mixed_ids.size, False, cmpbe_scalar, cmpbe_batch,
         cmpbe_verify, None),
    ]


#: Tracing-overhead ceilings for the smoke gate, as ratios over the
#: tracing-disabled run: full sampling must stay under 5% slowdown and
#: sample_rate=0.0 (the only cost is one ContextVar read per span site)
#: must stay under 2%.
TRACING_SAMPLED_CEILING = 1.05
TRACING_UNSAMPLED_CEILING = 1.02


def _per_span_seconds(tracer, repeats: int = 3, n: int = 4_000) -> float:
    """Best-of-N per-span cost of entering/exiting one exported span."""
    from repro.core.tracing import set_tracer

    previous = set_tracer(tracer)
    try:
        best = float("inf")
        for _ in range(repeats + 1):  # first pass doubles as warm-up
            start = time.perf_counter()
            for _ in range(n):
                with tracer.span("wal.append", frames=1):
                    pass
            best = min(best, (time.perf_counter() - start) / n)
        return best
    finally:
        set_tracer(previous)


def run_tracing_overhead(
    quick: bool = True, repeats: int = 5, base_dir: Path | None = None
) -> dict:
    """Measure tracing overhead on a durable ingest; returns the ratios
    the smoke gate checks.

    The workload is the instrumented write path itself (WAL appends,
    seals, manifest commits) at batch size 512 — 16x more span sites
    per element than the CLI default of 8192, so per-span cost is
    over- rather than under-weighted while the denominator stays a
    realistic amount of real work per span.  ``fsync="never"`` keeps
    the disk out of the denominator; exporters write real JSONL so the
    measured cost is the production one, not just the in-memory ring.

    The gated ratios are *derived*: exact span count per ingest times
    the tight-loop per-span cost, over the best-of-N ingest time.  A
    direct A/B of two ~100 ms ingests cannot resolve a few-percent
    effect on shared CI hardware (run-to-run scheduler noise is ~10%,
    larger than the quantity being gated), while each derived factor is
    individually stable: the span count is deterministic, the per-span
    microbenchmark is a tight loop, and the denominator uses min-of-N
    (the fastest plausible ingest — the *strictest* denominator).  The
    raw A/B timings are still reported for reference.
    """
    import shutil
    import tempfile

    from repro.core.durable import create_durable
    from repro.core.tracing import JsonlSpanExporter, Tracer, set_tracer

    n = 32_000 if quick else 96_000
    batch = 512
    ts = np.arange(n, dtype=np.float64)
    ids = (np.arange(n) * 7) % 128
    scratch = Path(
        tempfile.mkdtemp(prefix="trace-overhead-", dir=base_dir)
    )
    sequence = [0]

    def ingest_once():
        directory = scratch / f"run-{sequence[0]:04d}"
        sequence[0] += 1
        store = create_durable(
            directory,
            backend="exact",
            fsync="never",
            seal_elements=512,
        )
        for start in range(0, n, batch):
            store.extend_batch(
                ids[start:start + batch], ts[start:start + batch]
            )
        store.flush()
        store.close()
        shutil.rmtree(directory)

    def timed_once(tracer: "Tracer | None") -> float:
        previous = set_tracer(tracer)
        try:
            start = time.perf_counter()
            ingest_once()
            return time.perf_counter() - start
        finally:
            set_tracer(previous)

    try:
        sampled_tracer = Tracer(
            exporters=[JsonlSpanExporter(scratch / "spans-1.jsonl")],
            sample_rate=1.0,
        )
        unsampled_tracer = Tracer(
            exporters=[JsonlSpanExporter(scratch / "spans-0.jsonl")],
            sample_rate=0.0,
        )
        # One sampled run pins the exact span count per ingest, then a
        # round-robin A/B (reported, not gated) with the collector
        # paused as in _best_seconds.
        set_tracer(sampled_tracer)
        try:
            ingest_once()
        finally:
            set_tracer(None)
        sampled_spans = len(sampled_tracer.finished_spans())
        gc.collect()
        samples = {"disabled": [], "sampled": [], "unsampled": []}
        gc.disable()
        try:
            for _ in range(repeats):
                samples["disabled"].append(timed_once(None))
                samples["sampled"].append(timed_once(sampled_tracer))
                samples["unsampled"].append(timed_once(unsampled_tracer))
            span_s = _per_span_seconds(sampled_tracer)
            site_s = _per_span_seconds(unsampled_tracer)
        finally:
            gc.enable()
        disabled_s = min(samples["disabled"])
        sampled_s = min(samples["sampled"])
        unsampled_s = min(samples["unsampled"])
        sampled_tracer.close()
        unsampled_tracer.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "n_elements": n,
        "batch": batch,
        "repeats": repeats,
        "disabled_seconds": disabled_s,
        "sampled_seconds": sampled_s,
        "unsampled_seconds": unsampled_s,
        "measured_sampled_ratio": sampled_s / disabled_s,
        "measured_unsampled_ratio": unsampled_s / disabled_s,
        "per_span_seconds": span_s,
        "per_site_unsampled_seconds": site_s,
        "sampled_ratio": 1.0 + sampled_spans * span_s / disabled_s,
        "unsampled_ratio": 1.0 + sampled_spans * site_s / disabled_s,
        "sampled_spans": sampled_spans,
    }


def check_tracing_overhead(section: dict) -> list[str]:
    """Regression gate over a ``run_tracing_overhead`` section."""
    failures = []
    if section["sampled_spans"] <= 0:
        failures.append(
            "tracing: the fully-sampled run recorded no spans — the "
            "overhead measurement exercised nothing"
        )
    if section["sampled_ratio"] > TRACING_SAMPLED_CEILING:
        failures.append(
            f"tracing: sample_rate=1.0 ingest is "
            f"{(section['sampled_ratio'] - 1) * 100:.1f}% slower than "
            f"disabled (ceiling "
            f"{(TRACING_SAMPLED_CEILING - 1) * 100:.0f}%)"
        )
    if section["unsampled_ratio"] > TRACING_UNSAMPLED_CEILING:
        failures.append(
            f"tracing: sample_rate=0.0 ingest is "
            f"{(section['unsampled_ratio'] - 1) * 100:.1f}% slower than "
            f"disabled (ceiling "
            f"{(TRACING_UNSAMPLED_CEILING - 1) * 100:.0f}%)"
        )
    return failures


def run_ingest_comparison(
    quick: bool = False, repeats: int = 3, out_path: Path | None = None
) -> dict:
    """Time scalar vs batched ingest per layer; write BENCH_ingest.json."""
    from repro.workloads.olympics import make_olympicrio, make_soccer_stream

    n_single = 4_000 if quick else 20_000
    n_mixed = 4_000 if quick else 30_000
    soccer_ts = np.asarray(
        make_soccer_stream(total_mentions=n_single).timestamps,
        dtype=np.float64,
    )
    mixed = make_olympicrio(n_events=128, total_mentions=n_mixed)
    mixed_ids, mixed_ts = mixed.as_columns()

    rows = []
    for (
        name, n, vectorized, scalar_fn, batch_fn, verify_fn, oracle_fn
    ) in _ingest_layers(soccer_ts, mixed_ids, mixed_ts):
        scalar_s = _best_seconds(scalar_fn, repeats)
        # The oracle is timed immediately before the batch path so the
        # floor check compares two measurements from the same machine
        # phase (see _ingest_layers).
        oracle_s = (
            _best_seconds(oracle_fn, repeats) if oracle_fn is not None
            else None
        )
        batch_s = _best_seconds(batch_fn, repeats)
        rows.append(
            {
                "layer": name,
                "n_elements": int(n),
                "vectorized": vectorized,
                "scalar_seconds": scalar_s,
                "batch_seconds": batch_s,
                "scalar_elements_per_s": n / scalar_s,
                "batch_elements_per_s": n / batch_s,
                "speedup": scalar_s / batch_s,
                "oracle_seconds": oracle_s,
                "oracle_elements_per_s": (
                    n / oracle_s if oracle_s is not None else None
                ),
                "bit_identical": bool(verify_fn()),
            }
        )
    payload = {
        "workload": {
            "single_stream": "fig10 soccer",
            "n_single": int(soccer_ts.size),
            "mixed_stream": "olympicrio (128 events)",
            "n_mixed": int(mixed_ids.size),
            "quick": quick,
            "repeats": repeats,
        },
        "rows": rows,
        "max_speedup": max(r["speedup"] for r in rows),
        "metrics": global_registry().snapshot(),
    }
    target = out_path or RESULTS_DIR / "BENCH_ingest.json"
    target.parent.mkdir(exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_ingest_results(payload: dict) -> list[str]:
    """Regression gate over a BENCH_ingest.json payload."""
    failures = []
    for row in payload["rows"]:
        if row["speedup"] < NOISE_TOLERANCE:
            failures.append(
                f"{row['layer']}: batch is slower than scalar "
                f"(speedup {row['speedup']:.2f}x)"
            )
        if row["vectorized"] and row["speedup"] < VECTORIZED_FLOOR:
            failures.append(
                f"{row['layer']}: vectorized layer below "
                f"{VECTORIZED_FLOOR:.0f}x (got {row['speedup']:.2f}x)"
            )
        if not row.get("bit_identical", True):
            failures.append(
                f"{row['layer']}: batch ingest state diverged from the "
                "scalar oracle (bit-identity check failed)"
            )
        seed_rate = PBE_SEED_SCALAR_RATES.get(row["layer"])
        if seed_rate is not None:
            # Prefer the in-run oracle rate (same machine phase); fall
            # back to the recorded seed constant for old payloads.
            baseline = row.get("oracle_elements_per_s") or seed_rate
            floor = PBE_BATCH_FLOOR_MULTIPLE * baseline * NOISE_TOLERANCE
            if row["batch_elements_per_s"] < floor:
                failures.append(
                    f"{row['layer']}: batched ingest "
                    f"{row['batch_elements_per_s']:,.0f} el/s is below "
                    f"{PBE_BATCH_FLOOR_MULTIPLE:.0f}x the seed "
                    f"compression path ({baseline:,.0f} el/s; floor "
                    f"{floor:,.0f} after noise tolerance)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar-vs-batch ingest throughput comparison"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI smoke preset: --quick workloads, results written to a "
            "scratch file so the committed BENCH_ingest.json is never "
            "clobbered by a noisy runner"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if batching regressed",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        args.quick = True
        if args.out is None:
            args.out = RESULTS_DIR / "BENCH_ingest.smoke.json"
    payload = run_ingest_comparison(
        quick=args.quick, repeats=args.repeats, out_path=args.out
    )
    if args.smoke:
        # The tracing layer rides along in the smoke preset: an ingest
        # with full sampling must stay within a few percent of one with
        # tracing disabled, and sampling 0.0 within noise of it.
        overhead = run_tracing_overhead(quick=True, repeats=args.repeats)
        payload["tracing_overhead"] = overhead
        if args.out is not None:
            args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"tracing overhead over {overhead['sampled_spans']} spans: "
            f"sampled {(overhead['sampled_ratio'] - 1) * 100:+.1f}%, "
            f"unsampled {(overhead['unsampled_ratio'] - 1) * 100:+.1f}% "
            "vs disabled"
        )
    header = (
        f"{'layer':<12} {'n':>7} {'scalar el/s':>14} "
        f"{'batch el/s':>14} {'speedup':>8} {'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["rows"]:
        print(
            f"{row['layer']:<12} {row['n_elements']:>7} "
            f"{row['scalar_elements_per_s']:>14,.0f} "
            f"{row['batch_elements_per_s']:>14,.0f} "
            f"{row['speedup']:>7.2f}x "
            f"{'yes' if row['bit_identical'] else 'NO':>10}"
        )
    for row in payload["rows"]:
        oracle = row.get("oracle_elements_per_s")
        if oracle:
            print(
                f"{row['layer']}: batch is "
                f"{row['batch_elements_per_s'] / oracle:.2f}x the seed "
                f"compression path ({oracle:,.0f} el/s in this run)"
            )
    print(f"\nmax speedup: {payload['max_speedup']:.1f}x")
    if args.check:
        failures = check_ingest_results(payload)
        if "tracing_overhead" in payload:
            failures += check_tracing_overhead(payload["tracing_overhead"])
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
