"""Construction throughput and point-query latency micro-benchmarks.

These are the repeated-measurement benchmarks (pytest-benchmark's bread
and butter): elements/second into each sketch and microseconds per point
query out of it.  The paper reports construction times in Fig. 8a/9a;
this suite gives the per-operation view.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cmpbe import CMPBE
from repro.core.dyadic import BurstyEventIndex
from repro.core.pbe1 import PBE1
from repro.core.pbe2 import PBE2
from repro.workloads.profiles import DAY

N_ELEMENTS = 4_000


@pytest.fixture(scope="module")
def burst_chunk(soccer_timestamps):
    return soccer_timestamps[:N_ELEMENTS]


@pytest.fixture(scope="module")
def mixed_chunk(olympicrio_stream):
    return list(olympicrio_stream)[:N_ELEMENTS]


class TestConstructionThroughput:
    def test_pbe1_ingest(self, benchmark, burst_chunk):
        def run():
            sketch = PBE1(eta=100, buffer_size=1500)
            sketch.extend(burst_chunk)
            sketch.flush()
            return sketch

        sketch = benchmark(run)
        assert sketch.count == len(burst_chunk)

    def test_pbe2_ingest(self, benchmark, burst_chunk):
        def run():
            sketch = PBE2(gamma=20.0)
            sketch.extend(burst_chunk)
            sketch.finalize()
            return sketch

        sketch = benchmark(run)
        assert sketch.count == len(burst_chunk)

    def test_cmpbe1_ingest(self, benchmark, mixed_chunk):
        def run():
            sketch = CMPBE.with_pbe1(
                eta=100, width=6, depth=3, buffer_size=1500
            )
            sketch.extend(mixed_chunk)
            return sketch

        sketch = benchmark(run)
        assert sketch.count == len(mixed_chunk)

    def test_index_ingest(self, benchmark, mixed_chunk):
        def run():
            index = BurstyEventIndex.with_pbe2(
                128, gamma=20.0, width=6, depth=3
            )
            index.extend(mixed_chunk)
            return index

        index = benchmark(run)
        assert index.level_sketch(0).count == len(mixed_chunk)


class TestQueryLatency:
    @pytest.fixture(scope="class")
    def built(self, soccer_timestamps, olympicrio_stream):
        pbe1 = PBE1(eta=100, buffer_size=1500)
        pbe1.extend(soccer_timestamps)
        pbe1.flush()
        pbe2 = PBE2(gamma=20.0)
        pbe2.extend(soccer_timestamps)
        pbe2.finalize()
        index = BurstyEventIndex.with_pbe1(
            128, eta=60, width=6, depth=3, buffer_size=1500
        )
        index.extend(list(olympicrio_stream)[:20_000])
        index.finalize()
        return pbe1, pbe2, index

    def test_pbe1_point_query(self, benchmark, built):
        pbe1, _, _ = built
        benchmark(pbe1.burstiness, 15 * DAY, DAY)

    def test_pbe2_point_query(self, benchmark, built):
        _, pbe2, _ = built
        benchmark(pbe2.burstiness, 15 * DAY, DAY)

    def test_index_point_query(self, benchmark, built):
        _, _, index = built
        benchmark(index.point_query, 0, 15 * DAY, DAY)

    def test_index_bursty_event_query(self, benchmark, built):
        _, _, index = built
        benchmark(index.bursty_events, 15 * DAY, 100.0, DAY)
