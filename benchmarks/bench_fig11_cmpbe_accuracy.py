"""Fig. 11 — CM-PBE on mixed streams: point-query error vs total space on
olympicrio-like (11a) and uspolitics-like (11b) data, with the paper's
sketch parameters eps = 0.5, delta = 0.2.

Expected shape (paper): error falls as space grows.  REPRODUCED for
CM-PBE-1 on both datasets.  DEVIATION (see EXPERIMENTS.md): CM-PBE-2's
error is dominated by cell-collision noise — the burstiness that the
*other* events hashed into the same cells contribute at the query time —
which no per-cell ``gamma`` can reduce, so its curve is flat (and at or
below CM-PBE-1's) across the whole sweep instead of falling.  The
assertions check the CM-PBE-1 shape and CM-PBE-2's flat floor.
"""

from __future__ import annotations

from conftest import report

from repro.eval.harness import cmpbe_space_accuracy
from repro.eval.tables import format_table

# eps=0.5, delta=0.2 give w=6, d=2; an odd row count keeps the median
# estimator well-defined, so d=3 (still O(log 1/delta)).
WIDTH, DEPTH = 6, 3
ETAS = [6, 15, 60]
GAMMAS = [300.0, 80.0, 15.0]


def _run(stream):
    return cmpbe_space_accuracy(
        stream,
        etas=ETAS,
        gammas=GAMMAS,
        width=WIDTH,
        depth=DEPTH,
        buffer_size=1500,
        n_queries=100,
    )


def _check_shapes(rows):
    for sketch in ("CM-PBE-1", "CM-PBE-2"):
        series = [row for row in rows if row["sketch"] == sketch]
        spaces = [row["space_mb"] for row in series]
        assert all(a < b for a, b in zip(spaces, spaces[1:])), sketch
    cm1 = [r["mean_abs_error"] for r in rows if r["sketch"] == "CM-PBE-1"]
    cm2 = [r["mean_abs_error"] for r in rows if r["sketch"] == "CM-PBE-2"]
    # CM-PBE-1: error falls as space grows (the paper's shape).
    assert cm1[0] > cm1[-1]
    # CM-PBE-2: flat collision-noise floor, never above CM-PBE-1's worst.
    assert max(cm2) <= max(cm1)


def test_fig11a_olympicrio(benchmark, olympicrio_stream):
    rows = benchmark.pedantic(
        _run, args=(olympicrio_stream,), rounds=1, iterations=1
    )
    report(
        "fig11a_cmpbe_olympicrio",
        format_table(
            rows, title="Fig 11a: CM-PBE error vs space (olympicrio-like)"
        ),
    )
    _check_shapes(rows)


def test_fig11b_uspolitics(benchmark, uspolitics_dataset):
    rows = benchmark.pedantic(
        _run, args=(uspolitics_dataset.stream,), rounds=1, iterations=1
    )
    report(
        "fig11b_cmpbe_uspolitics",
        format_table(
            rows, title="Fig 11b: CM-PBE error vs space (uspolitics-like)"
        ),
    )
    _check_shapes(rows)
