"""Fig. 7 — dataset characteristics: incoming rate and burstiness of the
soccer and swimming events (tau = 1 day).

Expected shape (paper): swimming's bursts concentrate in the first half
then collapse to ~zero; soccer bursts all month with the largest burst
right before the final.
"""

from __future__ import annotations

from conftest import report

from repro.eval.harness import characteristics_series
from repro.eval.tables import format_table
from repro.streams.events import SingleEventStream
from repro.workloads.profiles import DAY


def test_fig07_characteristics(
    benchmark, soccer_timestamps, swimming_timestamps
):
    def run():
        return {
            "soccer": characteristics_series(
                SingleEventStream(soccer_timestamps), tau=DAY
            ),
            "swimming": characteristics_series(
                SingleEventStream(swimming_timestamps), tau=DAY
            ),
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = []
    for name, rows in series.items():
        blocks.append(
            format_table(rows, title=f"Fig 7 ({name}): tau = 1 day")
        )
    text = "\n\n".join(blocks)
    report("fig07_characteristics", text)

    soccer = series["soccer"]
    swimming = series["swimming"]
    # Swimming: active first half, dead second half.
    late = max(
        row["incoming_rate"] for row in swimming if row["day"] > 15
    )
    early = max(
        row["incoming_rate"] for row in swimming if row["day"] <= 10
    )
    assert late < early / 10
    # Soccer: the largest burst falls late in the month (the final).
    peak = max(soccer, key=lambda row: row["burstiness"])
    assert peak["day"] >= 25
