"""Fig. 9 — PBE-2 parameter study: space & construction cost vs gamma
(9a), point-query accuracy vs gamma (9b), on soccer and swimming.

Expected shape (paper): space drops quickly as gamma grows, then
flattens; construction stays fast and mostly flat; the error is linear in
and bounded by gamma (well under the 4*gamma worst case).
"""

from __future__ import annotations

from conftest import report

from repro.eval.harness import pbe2_parameter_study
from repro.eval.tables import format_table

GAMMAS = [10.0, 20.0, 50.0, 100.0, 200.0, 500.0]


def test_fig09_pbe2_parameter_study(
    benchmark, soccer_timestamps, swimming_timestamps
):
    streams = {
        "soccer": soccer_timestamps,
        "swimming": swimming_timestamps,
    }

    rows = benchmark.pedantic(
        pbe2_parameter_study,
        args=(streams, GAMMAS),
        kwargs={"n_queries": 100},
        rounds=1,
        iterations=1,
    )
    report(
        "fig09_pbe2_params",
        format_table(rows, title="Fig 9: PBE-2 study (tau = 1 day)"),
    )

    for name in streams:
        series = [row for row in rows if row["event"] == name]
        spaces = [row["space_kb"] for row in series]
        # 9a: space non-increasing in gamma, with a steep initial drop.
        assert all(a >= b for a, b in zip(spaces, spaces[1:]))
        assert spaces[0] > 2 * spaces[-1]
        # 9b: error bounded by the 4*gamma guarantee (Lemma 4), and in
        # practice below gamma itself for most settings.
        for row in series:
            assert row["mean_abs_error"] <= 4 * row["gamma"]
        assert series[0]["mean_abs_error"] < series[-1]["mean_abs_error"]
