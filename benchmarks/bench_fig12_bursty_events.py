"""Fig. 12 — bursty event detection: precision and recall of the dyadic
CM-PBE index vs total space, on both datasets.

Expected shape (paper): precision and recall rise towards 1 as space
grows; recall generally beats precision (a real burst changes the
incoming rate enough to be captured, while collisions of non-bursty
events can fabricate a few false positives); olympicrio beats uspolitics
at equal space.
"""

from __future__ import annotations

from conftest import report

from repro.eval.harness import bursty_event_detection_study
from repro.eval.tables import format_table

WIDTH, DEPTH = 6, 3
ETAS = [20, 100]
GAMMAS = [40.0, 5.0]


def _run(stream, universe_size):
    return bursty_event_detection_study(
        stream,
        universe_size=universe_size,
        etas=ETAS,
        gammas=GAMMAS,
        width=WIDTH,
        depth=DEPTH,
        buffer_size=1500,
        n_times=6,
        theta_fractions=(0.2, 0.5, 0.8),
    )


def _check_shapes(rows):
    for sketch in ("CM-PBE-1", "CM-PBE-2"):
        series = [row for row in rows if row["sketch"] == sketch]
        assert len(series) == 2
        small, large = series
        assert small["space_mb"] < large["space_mb"]
        # More space should not hurt the combined quality.
        small_f1 = _f1(small)
        large_f1 = _f1(large)
        assert large_f1 >= small_f1 - 0.1
        assert large["recall"] >= 0.5


def _f1(row):
    p, r = row["precision"], row["recall"]
    return 0.0 if p + r == 0 else 2 * p * r / (p + r)


def test_fig12a_olympicrio(benchmark, olympicrio_stream):
    universe = 128
    rows = benchmark.pedantic(
        _run, args=(olympicrio_stream, universe), rounds=1, iterations=1
    )
    report(
        "fig12a_bursty_events_olympicrio",
        format_table(
            rows,
            title="Fig 12a: bursty event detection (olympicrio-like)",
        ),
    )
    _check_shapes(rows)


def test_fig12b_uspolitics(benchmark, uspolitics_dataset):
    universe = 192
    rows = benchmark.pedantic(
        _run,
        args=(uspolitics_dataset.stream, universe),
        rounds=1,
        iterations=1,
    )
    report(
        "fig12b_bursty_events_uspolitics",
        format_table(
            rows,
            title="Fig 12b: bursty event detection (uspolitics-like)",
        ),
    )
    _check_shapes(rows)
