"""Related-work burst definitions side by side (paper §VII).

Four ways to call the same soccer stream bursty — the paper's
acceleration threshold, Kleinberg's automaton, Haar-wavelet outlier
windows, and the MACD trending score — must broadly agree on *when* the
bursts happened, while only the paper's definition supports historical
``(t, tau)`` queries from a sketch.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.baselines.exact import ExactBurstStore
from repro.baselines.kleinberg import KleinbergBurstDetector
from repro.baselines.macd import MacdTrendScorer
from repro.baselines.wavelet import HaarBurstDetector
from repro.eval.tables import format_table
from repro.workloads.profiles import DAY


def _interval_overlap(a, b) -> float:
    total = 0.0
    for s1, e1 in a:
        for s2, e2 in b:
            total += max(0.0, min(e1, e2) - max(s1, s2))
    return total


def test_related_work_agreement(benchmark, soccer_timestamps):
    exact = ExactBurstStore()
    for t in soccer_timestamps:
        exact.update(0, t)
    grid = np.arange(2 * DAY, 31 * DAY, DAY / 4)
    values = [exact.burstiness(0, t, DAY) for t in grid]
    theta = 0.4 * max(values)
    t_end = soccer_timestamps[-1] + 2 * DAY
    reference = exact.bursty_times(0, theta, DAY, t_end=t_end)

    def run():
        kleinberg = KleinbergBurstDetector().burst_intervals(
            soccer_timestamps
        )
        wavelet = HaarBurstDetector(
            bin_width=DAY / 8, z_threshold=3.0
        ).detect(soccer_timestamps, t_start=0.0, t_end=31 * DAY)
        macd = MacdTrendScorer(bin_width=DAY / 8).trending_intervals(
            soccer_timestamps
        )
        return kleinberg, wavelet, macd

    kleinberg, wavelet, macd = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    candidates = {
        "acceleration threshold": reference,
        "kleinberg automaton": [(iv.start, iv.end) for iv in kleinberg],
        "haar wavelet": [(b.start, b.end) for b in wavelet],
        "macd trending": macd,
    }
    rows = []
    reference_length = sum(e - s for s, e in reference)
    for name, intervals in candidates.items():
        shared = _interval_overlap(reference, intervals)
        rows.append(
            {
                "method": name,
                "n_intervals": len(intervals),
                "burst_days": sum(e - s for s, e in intervals) / DAY,
                "overlap_with_reference": (
                    shared / reference_length if reference_length else 0.0
                ),
            }
        )
    report(
        "related_work_agreement",
        format_table(
            rows, title="Burst definitions on soccer (reference overlap)"
        ),
    )
    # Every alternative definition overlaps the reference bursts.
    for row in rows[1:]:
        assert row["overlap_with_reference"] > 0.0, row["method"]
