"""§II-B / §III-C — cost table: space, point-query latency and error of
the exact baseline vs PBE-1 vs PBE-2 on the soccer stream.

Expected shape (paper): both sketches are orders of magnitude smaller
than the exact store at modest error; query latency is O(log n) for all
three (binary search), so the same ballpark.
"""

from __future__ import annotations

from conftest import report

from repro.eval.harness import cost_comparison
from repro.eval.tables import format_table


def test_cost_comparison(benchmark, soccer_timestamps):
    rows = benchmark.pedantic(
        cost_comparison,
        args=(soccer_timestamps,),
        kwargs={"eta": 100, "gamma": 20.0, "n_queries": 200},
        rounds=1,
        iterations=1,
    )
    report(
        "costs",
        format_table(
            rows, title="Space / query latency / error (soccer stream)"
        ),
    )
    by_method = {row["method"]: row for row in rows}
    assert by_method["exact"]["mean_abs_error"] == 0.0
    # Sketches are much smaller than the exact store.
    assert by_method["PBE-1"]["space_kb"] < (
        by_method["exact"]["space_kb"] / 3
    )
    assert by_method["PBE-2"]["space_kb"] < (
        by_method["exact"]["space_kb"] / 10
    )
    # All methods answer point queries in microseconds (O(log n)).
    for row in rows:
        assert row["query_us"] < 1_000
