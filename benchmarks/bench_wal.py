"""WAL append-throughput and recovery-time benchmark (BENCH_wal.json).

PR 7 added the durable write/read-split lifecycle; this suite measures
its two hot paths:

* **append throughput per fsync policy** — batched records/s through a
  raw :class:`WriteAheadLog` under ``never``, ``batch`` and ``always``,
  so the durability/throughput trade-off documented in README is a
  measured number, not folklore;
* **recovery time vs WAL tail length** — wall time of
  :func:`repro.core.durable.recover` as the unsealed tail grows, with
  the recovered record count verified against what was ingested before
  any timing is reported.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_wal.py [--smoke] [--check]

``--smoke`` shrinks the workload for a CI run; ``--check`` exits
nonzero when the non-``always`` policies drop below the sanity floor
or a recovery round-trips the wrong record count.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.durable import create_durable, recover
from repro.core.metrics import global_registry
from repro.core.wal import FSYNC_POLICIES, WriteAheadLog, replay_wal

RESULTS_DIR = Path(__file__).parent / "results"

BATCH = 1_024

#: records/s the page-cache policies must clear in --check runs.  Set
#: far below real hardware (tens of millions on a laptop) so the gate
#: only trips on structural regressions, never on a slow CI box.
APPEND_FLOOR = 50_000
REPLAY_FLOOR = 50_000


def _stream(n: int):
    ids = (np.arange(n, dtype=np.int64) * 7) % 997
    ts = np.arange(n, dtype=np.float64)
    return ids, ts


def _time_appends(policy: str, n_records: int, root: Path) -> dict:
    ids, ts = _stream(n_records)
    path = root / f"wal-{policy}.log"
    wal = WriteAheadLog(path, fsync=policy)
    start = time.perf_counter()
    for begin in range(0, n_records, BATCH):
        wal.append(ids[begin : begin + BATCH], ts[begin : begin + BATCH])
    wal.flush()
    elapsed = time.perf_counter() - start
    wal.close()

    replay_start = time.perf_counter()
    replay = replay_wal(path)
    replay_elapsed = time.perf_counter() - replay_start
    return {
        "policy": policy,
        "n_records": int(n_records),
        "batch": BATCH,
        "append_seconds": elapsed,
        "records_per_s": n_records / elapsed,
        "wal_bytes": int(path.stat().st_size),
        "replay_records": int(replay.records),
        "replay_seconds": replay_elapsed,
        "replay_records_per_s": replay.records / replay_elapsed,
    }


def _time_recovery(tail_records: int, root: Path) -> dict:
    """Recovery wall time with ``tail_records`` unsealed in the WAL."""
    ids, ts = _stream(tail_records)
    directory = root / f"recover-{tail_records}"
    store = create_durable(
        directory, seal_elements=2 * tail_records + 1, fsync="never"
    )
    for begin in range(0, tail_records, BATCH):
        store.extend_batch(
            ids[begin : begin + BATCH], ts[begin : begin + BATCH]
        )
    store.close()
    start = time.perf_counter()
    recovered = recover(directory)
    elapsed = time.perf_counter() - start
    count = recovered.count
    recovered.close()
    shutil.rmtree(directory)
    return {
        "tail_records": int(tail_records),
        "recover_seconds": elapsed,
        "records_per_s": tail_records / elapsed,
        "count_correct": count == tail_records,
    }


def run_wal_benchmark(
    smoke: bool = False, out_path: Path | None = None
) -> dict:
    n_append = 50_000 if smoke else 400_000
    tails = [1_000, 8_000] if smoke else [1_000, 10_000, 100_000]
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        append_rows = [
            _time_appends(policy, n_append, root)
            for policy in sorted(FSYNC_POLICIES)
        ]
        recovery_rows = [_time_recovery(tail, root) for tail in tails]
    payload = {
        "workload": {
            "append_records": int(n_append),
            "batch": BATCH,
            "tail_lengths": [int(t) for t in tails],
            "smoke": smoke,
        },
        "append": append_rows,
        "recovery": recovery_rows,
        "metrics": global_registry().snapshot(),
    }
    target = out_path or RESULTS_DIR / "BENCH_wal.json"
    target.parent.mkdir(exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_wal_results(payload: dict) -> list[str]:
    """Regression gate over a BENCH_wal.json payload."""
    failures = []
    for row in payload["append"]:
        tag = f"append[{row['policy']}]"
        if row["replay_records"] != row["n_records"]:
            failures.append(
                f"{tag}: replay saw {row['replay_records']} of "
                f"{row['n_records']} records"
            )
        # "always" pays one fsync per append by design; no floor there.
        if row["policy"] != "always":
            if row["records_per_s"] < APPEND_FLOOR:
                failures.append(
                    f"{tag}: {row['records_per_s']:,.0f} records/s is "
                    f"below the {APPEND_FLOOR:,} floor"
                )
            if row["replay_records_per_s"] < REPLAY_FLOOR:
                failures.append(
                    f"{tag}: replay at "
                    f"{row['replay_records_per_s']:,.0f} records/s is "
                    f"below the {REPLAY_FLOOR:,} floor"
                )
    for row in payload["recovery"]:
        tag = f"recovery[{row['tail_records']}]"
        if not row["count_correct"]:
            failures.append(f"{tag}: recovered the wrong record count")
        if row["records_per_s"] < REPLAY_FLOOR:
            failures.append(
                f"{tag}: {row['records_per_s']:,.0f} records/s is below "
                f"the {REPLAY_FLOOR:,} floor"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="WAL append / recovery benchmark"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small workload (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero below the sanity floors",
    )
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)

    payload = run_wal_benchmark(smoke=args.smoke, out_path=args.out)
    header = (
        f"{'fsync policy':<14} {'records':>9} {'append rec/s':>14} "
        f"{'replay rec/s':>14} {'wal MiB':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["append"]:
        print(
            f"{row['policy']:<14} {row['n_records']:>9,} "
            f"{row['records_per_s']:>14,.0f} "
            f"{row['replay_records_per_s']:>14,.0f} "
            f"{row['wal_bytes'] / 2**20:>8.1f}"
        )
    print()
    header = f"{'WAL tail':>9} {'recover s':>10} {'recover rec/s':>14}"
    print(header)
    print("-" * len(header))
    for row in payload["recovery"]:
        print(
            f"{row['tail_records']:>9,} {row['recover_seconds']:>10.4f} "
            f"{row['records_per_s']:>14,.0f}"
        )
    if args.check:
        failures = check_wal_results(payload)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
